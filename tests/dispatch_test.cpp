// Targeted tests of the chained / trace block-dispatch engine: successor
// chaining, superblock formation and guarded dispatch, guard-failure
// bails, indirect jumps into trace interiors and block middles,
// instruction-limit stops inside hot traces, quantum slicing, and the
// per-block breakpoint flags. The broad equivalence sweep lives in
// random_program_test.cpp; these are the corner cases with a known
// shape.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "iss/iss.h"
#include "trc/assembler.h"

namespace cabt {
namespace {

arch::ArchDescription defaultArch() {
  return arch::ArchDescription::defaultTc10gp();
}

iss::IssConfig traceConfig(uint32_t threshold = 2) {
  iss::IssConfig cfg;
  cfg.dispatch_mode = iss::DispatchMode::kChainedTraces;
  cfg.trace_threshold = threshold;
  return cfg;
}

iss::IssConfig steppingConfig() {
  iss::IssConfig cfg;
  cfg.use_block_cache = false;
  return cfg;
}

/// Threaded-code backend with aggressive lowering: blocks lower after
/// two executions, traces form after two dispatches, so even short
/// programs run mostly as host handler arrays.
iss::IssConfig threadedConfig() {
  iss::IssConfig cfg;
  cfg.dispatch_mode = iss::DispatchMode::kThreaded;
  cfg.trace_threshold = 2;
  cfg.threaded_threshold = 2;
  return cfg;
}

// A hot nested loop: the inner block re-enters itself 20 times per outer
// iteration, so a low-threshold trace engine unrolls it into a
// superblock whose guards fail exactly once per inner-loop exit.
const char* kNestedLoops = R"(
_start: movi d5, 10
        movi d1, 0
outer:  movi d0, 20
inner:  add d1, d1, d0
        xor d2, d1, d5
        addi16 d0, -1
        jnz16 d0, inner
        addi16 d5, -1
        jnz16 d5, outer
        movi d3, 99
        halt
)";

void expectSameState(iss::Iss& a, iss::Iss& b) {
  EXPECT_EQ(a.pc(), b.pc());
  EXPECT_EQ(a.stats().instructions, b.stats().instructions);
  EXPECT_EQ(a.stats().cycles, b.stats().cycles);
  EXPECT_EQ(a.stats().pipeline_cycles, b.stats().pipeline_cycles);
  EXPECT_EQ(a.stats().branch_extra, b.stats().branch_extra);
  EXPECT_EQ(a.stats().cache_penalty, b.stats().cache_penalty);
  EXPECT_EQ(a.stats().blocks, b.stats().blocks);
  EXPECT_EQ(a.stats().icache_accesses, b.stats().icache_accesses);
  EXPECT_EQ(a.stats().icache_misses, b.stats().icache_misses);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.d(i), b.d(i)) << "d" << i;
    EXPECT_EQ(a.a(i), b.a(i)) << "a" << i;
  }
}

TEST(ChainedDispatch, ChainsSuccessorsWithoutLookups) {
  const elf::Object obj = trc::assemble(kNestedLoops);
  iss::IssConfig cfg;
  cfg.dispatch_mode = iss::DispatchMode::kChained;
  iss::Iss iss(defaultArch(), obj, nullptr, cfg);
  ASSERT_EQ(iss.run(), iss::StopReason::kHalted);
  // 10 outer x 20 inner iterations: nearly every dispatch resolves
  // through a chained edge; no traces in kChained mode.
  EXPECT_GT(iss.stats().chain_hits, 200u);
  EXPECT_EQ(iss.stats().trace_dispatches, 0u);
  EXPECT_EQ(iss.stats().cached_blocks, iss.stats().blocks);

  iss::Iss slow(defaultArch(), obj, nullptr, steppingConfig());
  ASSERT_EQ(slow.run(), iss::StopReason::kHalted);
  expectSameState(iss, slow);
}

TEST(TraceDispatch, FormsHotTracesAndStaysExact) {
  const elf::Object obj = trc::assemble(kNestedLoops);
  iss::Iss iss(defaultArch(), obj, nullptr, traceConfig());
  ASSERT_EQ(iss.run(), iss::StopReason::kHalted);
  EXPECT_GT(iss.stats().trace_dispatches, 0u);
  EXPECT_GT(iss.stats().trace_blocks, iss.stats().trace_dispatches);
  // Every inner-loop exit leaves the unrolled trace through a failing
  // guard (the backedge finally falls through).
  EXPECT_GT(iss.stats().guard_bails, 0u);

  iss::Iss slow(defaultArch(), obj, nullptr, steppingConfig());
  ASSERT_EQ(slow.run(), iss::StopReason::kHalted);
  expectSameState(iss, slow);

  // Hot-block accounting attributes the inner block's dispatches to
  // trace execution.
  const auto hot = iss.hotBlocks(1);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0].exec_count, 200u);
  EXPECT_GT(hot[0].trace_execs, 0u);
}

TEST(TraceDispatch, NearBalancedBranchesDoNotSpliceButStayExact) {
  // The branch alternates taken/not-taken, so neither outcome ever
  // dominates 4:1 and the trace must not speculate through it; the run
  // still has to be bit-exact whatever the builder decides.
  const char* kAlternating = R"(
_start: movi d0, 200
        movi d1, 0
        movi d2, 0
loop:   xor d1, d1, d0
        and d3, d1, d0
        jnz16 d3, skip
        addi16 d2, 1
skip:   addi16 d0, -1
        jnz16 d0, loop
        halt
)";
  const elf::Object obj = trc::assemble(kAlternating);
  iss::Iss iss(defaultArch(), obj, nullptr, traceConfig());
  ASSERT_EQ(iss.run(), iss::StopReason::kHalted);
  iss::Iss slow(defaultArch(), obj, nullptr, steppingConfig());
  ASSERT_EQ(slow.run(), iss::StopReason::kHalted);
  expectSameState(iss, slow);
}

TEST(TraceDispatch, IndirectJumpIntoTraceInteriorLeader) {
  // After the loop gets hot (trace formed over [body, body, ...]), an
  // indirect jump re-enters the loop body — an interior trace segment —
  // through the plain lookup path.
  const char* kProgram = R"(
_start: movi d5, 3
again:  movi d0, 30
body:   add d1, d1, d0
        addi16 d0, -1
        jnz16 d0, body
        addi16 d5, -1
        jz16 d5, done
        movha a2, hi(body)
        lea a2, a2, lo(body)
        movi d0, 15
        ji a2
done:   halt
)";
  const elf::Object obj = trc::assemble(kProgram);
  iss::Iss iss(defaultArch(), obj, nullptr, traceConfig());
  ASSERT_EQ(iss.run(), iss::StopReason::kHalted);
  EXPECT_GT(iss.stats().trace_dispatches, 0u);
  iss::Iss slow(defaultArch(), obj, nullptr, steppingConfig());
  ASSERT_EQ(slow.run(), iss::StopReason::kHalted);
  expectSameState(iss, slow);
}

TEST(TraceDispatch, IndirectJumpIntoBlockMiddleFallsBack) {
  // The indirect target is *not* a leader: per-instruction semantics
  // keep the open block across the jump, so the dispatcher must re-warm
  // the stepping engine even while the containing block is part of a
  // hot trace.
  const char* kProgram = R"(
_start: movi d5, 3
again:  movi d0, 30
body:   add d1, d1, d0
mid:    xor d2, d1, d5
        addi16 d0, -1
        jnz16 d0, body
        addi16 d5, -1
        jz16 d5, done
        movha a2, hi(mid)
        lea a2, a2, lo(mid)
        movi d0, 1
        ji a2
done:   halt
)";
  const elf::Object obj = trc::assemble(kProgram);
  iss::Iss iss(defaultArch(), obj, nullptr, traceConfig());
  ASSERT_EQ(iss.run(), iss::StopReason::kHalted);
  EXPECT_GT(iss.stats().trace_dispatches, 0u);
  iss::Iss slow(defaultArch(), obj, nullptr, steppingConfig());
  ASSERT_EQ(slow.run(), iss::StopReason::kHalted);
  expectSameState(iss, slow);
}

TEST(TraceDispatch, InstructionLimitStopsExactlyInsideHotTrace) {
  // The limit falls mid-way through what the trace engine executes as
  // superblocks: the engine must refuse whole traces/blocks that would
  // overshoot and step up to the precise instruction, like the
  // stepping engine.
  const elf::Object obj = trc::assemble(kNestedLoops);
  for (const uint64_t limit : {57u, 100u, 333u, 801u}) {
    SCOPED_TRACE("limit " + std::to_string(limit));
    iss::IssConfig fast_cfg = traceConfig();
    fast_cfg.max_instructions = limit;
    iss::Iss fast(defaultArch(), obj, nullptr, fast_cfg);
    EXPECT_EQ(fast.run(), iss::StopReason::kMaxInstructions);
    iss::IssConfig slow_cfg = steppingConfig();
    slow_cfg.max_instructions = limit;
    iss::Iss slow(defaultArch(), obj, nullptr, slow_cfg);
    EXPECT_EQ(slow.run(), iss::StopReason::kMaxInstructions);
    EXPECT_EQ(fast.stats().instructions, limit);
    expectSameState(fast, slow);
  }
}

TEST(TraceDispatch, QuantumSlicesYieldAtIdenticalBoundaries) {
  // runUntil must yield at the same block boundaries with the same
  // local time whether blocks run stepped, chained or inside traces —
  // including yields at trace-internal boundaries.
  const elf::Object obj = trc::assemble(kNestedLoops);
  iss::Iss fast(defaultArch(), obj, nullptr, traceConfig());
  iss::Iss slow(defaultArch(), obj, nullptr, steppingConfig());
  std::vector<std::pair<uint64_t, uint32_t>> fast_yields;
  std::vector<std::pair<uint64_t, uint32_t>> slow_yields;
  for (uint64_t t = 25;; t += 25) {
    const iss::StopReason r = fast.runUntil(t);
    if (r != iss::StopReason::kCycleLimit) {
      ASSERT_EQ(r, iss::StopReason::kHalted);
      break;
    }
    fast_yields.push_back({fast.localTime(), fast.pc()});
  }
  for (uint64_t t = 25;; t += 25) {
    const iss::StopReason r = slow.runUntil(t);
    if (r != iss::StopReason::kCycleLimit) {
      ASSERT_EQ(r, iss::StopReason::kHalted);
      break;
    }
    slow_yields.push_back({slow.localTime(), slow.pc()});
  }
  EXPECT_GT(fast.stats().trace_dispatches, 0u);
  EXPECT_EQ(fast_yields, slow_yields);
  expectSameState(fast, slow);
}

TEST(BreakpointFlags, BreakpointInTraceInteriorStopsExactly) {
  const elf::Object obj = trc::assemble(kNestedLoops);
  iss::Iss iss(defaultArch(), obj, nullptr, traceConfig());
  // Heat the loop until traces dominate, then plant a breakpoint
  // mid-way inside the (trace-interior) inner block.
  iss::IssConfig probe_cfg = traceConfig();
  iss::Iss counter(defaultArch(), obj, nullptr, probe_cfg);
  ASSERT_EQ(counter.run(), iss::StopReason::kHalted);
  ASSERT_GT(counter.stats().trace_dispatches, 0u);

  const uint32_t bp = 0x80000010;  // 'xor' inside the inner block
  iss.addBreakpoint(bp);
  uint64_t stops = 0;
  while (iss.run() == iss::StopReason::kDebugBreak) {
    EXPECT_EQ(iss.pc(), bp);
    ++stops;
    ASSERT_LT(stops, 1000u);
  }
  EXPECT_EQ(iss.stopReason(), iss::StopReason::kHalted);
  EXPECT_EQ(stops, 200u);  // every inner iteration crosses it

  // Breakpoints perturb nothing: final state equals an unbroken run.
  iss::Iss ref(defaultArch(), obj, nullptr, traceConfig());
  ASSERT_EQ(ref.run(), iss::StopReason::kHalted);
  expectSameState(iss, ref);
}

TEST(BreakpointFlags, DeclinedFormationRetriesAfterBreakpointRemoval) {
  // The hot block's dominant successor carries a breakpoint when the
  // head first crosses the trace threshold, so formation is declined.
  // A decline must not be permanent: after the breakpoint is removed,
  // the geometric-backoff retry forms the trace and the rest of the
  // run dispatches superblocks.
  const char* kProgram = R"(
_start: movi d5, 400
        movi d4, 0
loop:   add d1, d1, d5
        jnz16 d4, off
body:   addi16 d5, -1
        jnz16 d5, loop
        halt
off:    halt
)";
  const elf::Object obj = trc::assemble(kProgram);
  iss::Iss iss(defaultArch(), obj, nullptr, traceConfig());
  ASSERT_NE(obj.findSymbol("body"), nullptr);
  const uint32_t body = obj.findSymbol("body")->value;
  iss.addBreakpoint(body);
  for (int stops = 0; stops < 20; ++stops) {
    ASSERT_EQ(iss.run(), iss::StopReason::kDebugBreak);
    ASSERT_EQ(iss.pc(), body);
  }
  EXPECT_EQ(iss.stats().trace_dispatches, 0u);
  iss.removeBreakpoint(body);
  ASSERT_EQ(iss.run(), iss::StopReason::kHalted);
  EXPECT_GT(iss.stats().trace_dispatches, 0u);

  iss::Iss slow(defaultArch(), obj, nullptr, steppingConfig());
  ASSERT_EQ(slow.run(), iss::StopReason::kHalted);
  expectSameState(iss, slow);
}

// ---- threaded-code backend corner cases ------------------------------

TEST(ThreadedDispatch, LowersHotBlocksAndTracesAndStaysExact) {
  const elf::Object obj = trc::assemble(kNestedLoops);
  iss::Iss fast(defaultArch(), obj, nullptr, threadedConfig());
  ASSERT_EQ(fast.run(), iss::StopReason::kHalted);
  // The hot loop really ran through lowered programs — both the block
  // and trace flavours — not the interpreted fallback.
  EXPECT_GT(fast.stats().threaded_lowerings, 0u);
  EXPECT_GT(fast.stats().threaded_dispatches, 0u);
  EXPECT_GT(fast.stats().trace_dispatches, 0u);
  EXPECT_GT(fast.stats().threaded_instrs, fast.stats().instructions / 2);
  EXPECT_EQ(fast.stats().threaded_declined, 0u);

  iss::Iss slow(defaultArch(), obj, nullptr, steppingConfig());
  ASSERT_EQ(slow.run(), iss::StopReason::kHalted);
  expectSameState(fast, slow);
}

TEST(ThreadedDispatch, BreakpointOnLoweredBlockForcesFallback) {
  // The inner block is already lowered to a threaded program when the
  // breakpoint lands on it: the dispatch-time flag test must refuse the
  // lowered program (and the trace containing it) and fall back to the
  // stepping engine, without invalidating the lowering — removal
  // restores full threaded dispatch.
  const elf::Object obj = trc::assemble(kNestedLoops);
  iss::Iss iss(defaultArch(), obj, nullptr, threadedConfig());
  iss::IssConfig limit_cfg = threadedConfig();
  limit_cfg.max_instructions = 300;
  iss::Iss probe(defaultArch(), obj, nullptr, limit_cfg);
  EXPECT_EQ(probe.run(), iss::StopReason::kMaxInstructions);
  EXPECT_GT(probe.stats().threaded_dispatches, 0u);

  const uint32_t bp = 0x80000010;  // 'xor' inside the lowered inner block
  iss::Iss broken(defaultArch(), obj, nullptr, threadedConfig());
  broken.addBreakpoint(bp);
  uint64_t stops = 0;
  while (broken.run() == iss::StopReason::kDebugBreak) {
    EXPECT_EQ(broken.pc(), bp);
    if (++stops == 5 && broken.stats().threaded_dispatches > 0) {
      // Heated past the threshold mid-phase: the flagged block must
      // still never dispatch through its threaded program.
      break;
    }
    ASSERT_LT(stops, 1000u);
  }
  if (broken.stopReason() == iss::StopReason::kDebugBreak) {
    broken.removeBreakpoint(bp);
    const uint64_t threaded_before = broken.stats().threaded_dispatches;
    ASSERT_EQ(broken.run(), iss::StopReason::kHalted);
    EXPECT_GT(broken.stats().threaded_dispatches, threaded_before);
  } else {
    ASSERT_EQ(broken.stopReason(), iss::StopReason::kHalted);
    EXPECT_EQ(stops, 200u);  // every inner iteration crossed it
  }

  ASSERT_EQ(iss.run(), iss::StopReason::kHalted);
  expectSameState(broken, iss);
}

TEST(ThreadedDispatch, QuantumSliceExpiryMidProgramYieldsExactly) {
  // runUntil limits fall between the original block boundaries inside
  // lowered trace programs: the threaded dispatcher must yield at the
  // identical boundary, with the identical local time and pc, as the
  // stepping engine.
  const elf::Object obj = trc::assemble(kNestedLoops);
  iss::Iss fast(defaultArch(), obj, nullptr, threadedConfig());
  iss::Iss slow(defaultArch(), obj, nullptr, steppingConfig());
  std::vector<std::pair<uint64_t, uint32_t>> fast_yields;
  std::vector<std::pair<uint64_t, uint32_t>> slow_yields;
  for (uint64_t t = 25;; t += 25) {
    const iss::StopReason r = fast.runUntil(t);
    if (r != iss::StopReason::kCycleLimit) {
      ASSERT_EQ(r, iss::StopReason::kHalted);
      break;
    }
    fast_yields.push_back({fast.localTime(), fast.pc()});
  }
  for (uint64_t t = 25;; t += 25) {
    const iss::StopReason r = slow.runUntil(t);
    if (r != iss::StopReason::kCycleLimit) {
      ASSERT_EQ(r, iss::StopReason::kHalted);
      break;
    }
    slow_yields.push_back({slow.localTime(), slow.pc()});
  }
  EXPECT_GT(fast.stats().threaded_dispatches, 0u);
  EXPECT_EQ(fast_yields, slow_yields);
  expectSameState(fast, slow);
}

TEST(ThreadedDispatch, InstructionLimitTruncatesExactly) {
  // The admission check refuses whole lowered programs that would
  // overshoot max_instructions, stepping the remainder — the stop lands
  // on the precise instruction for every limit.
  const elf::Object obj = trc::assemble(kNestedLoops);
  for (const uint64_t limit : {57u, 100u, 333u, 801u}) {
    SCOPED_TRACE("limit " + std::to_string(limit));
    iss::IssConfig fast_cfg = threadedConfig();
    fast_cfg.max_instructions = limit;
    iss::Iss fast(defaultArch(), obj, nullptr, fast_cfg);
    EXPECT_EQ(fast.run(), iss::StopReason::kMaxInstructions);
    iss::IssConfig slow_cfg = steppingConfig();
    slow_cfg.max_instructions = limit;
    iss::Iss slow(defaultArch(), obj, nullptr, slow_cfg);
    EXPECT_EQ(slow.run(), iss::StopReason::kMaxInstructions);
    EXPECT_EQ(fast.stats().instructions, limit);
    expectSameState(fast, slow);
  }
}

TEST(ThreadedDispatch, IndirectJumpLeavesLoweredRegionExactly) {
  // An indirect jump lands in the middle of a block whose region is
  // already lowered: the landing is not a leader, so the dispatcher
  // must re-warm the stepping engine mid-block — with the pipeline
  // timer and icache line tracking replayed — before threaded dispatch
  // resumes at the next leader.
  const char* kProgram = R"(
_start: movi d5, 3
again:  movi d0, 30
body:   add d1, d1, d0
mid:    xor d2, d1, d5
        addi16 d0, -1
        jnz16 d0, body
        addi16 d5, -1
        jz16 d5, done
        movha a2, hi(mid)
        lea a2, a2, lo(mid)
        movi d0, 1
        ji a2
done:   halt
)";
  const elf::Object obj = trc::assemble(kProgram);
  iss::Iss fast(defaultArch(), obj, nullptr, threadedConfig());
  ASSERT_EQ(fast.run(), iss::StopReason::kHalted);
  EXPECT_GT(fast.stats().threaded_dispatches, 0u);
  iss::Iss slow(defaultArch(), obj, nullptr, steppingConfig());
  ASSERT_EQ(slow.run(), iss::StopReason::kHalted);
  expectSameState(fast, slow);
}

TEST(BreakpointFlags, AddAndRemoveMidRunTogglesTraceUse) {
  const elf::Object obj = trc::assemble(kNestedLoops);
  iss::Iss iss(defaultArch(), obj, nullptr, traceConfig());
  const uint32_t bp = 0x80000010;

  // Phase 1: hot, traces active.
  iss::IssConfig limit_cfg = traceConfig();
  limit_cfg.max_instructions = 300;
  iss::Iss probe(defaultArch(), obj, nullptr, limit_cfg);
  EXPECT_EQ(probe.run(), iss::StopReason::kMaxInstructions);
  EXPECT_GT(probe.stats().trace_dispatches, 0u);

  // Phase 2: planting the breakpoint stops trace/block dispatch of the
  // flagged block; removing it restores full-speed dispatch and the
  // run completes identically to the never-broken reference.
  ASSERT_EQ(iss.run() == iss::StopReason::kHalted, true);
  iss::Iss broken(defaultArch(), obj, nullptr, traceConfig());
  broken.addBreakpoint(bp);
  ASSERT_EQ(broken.run(), iss::StopReason::kDebugBreak);
  EXPECT_EQ(broken.pc(), bp);
  broken.removeBreakpoint(bp);
  const uint64_t traces_before = broken.stats().trace_dispatches;
  ASSERT_EQ(broken.run(), iss::StopReason::kHalted);
  EXPECT_GT(broken.stats().trace_dispatches, traces_before);
  expectSameState(broken, iss);
}

}  // namespace
}  // namespace cabt
