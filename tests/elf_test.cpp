// ELF32 writer/reader round-trip tests.
#include <gtest/gtest.h>

#include "common/error.h"
#include "elf/elf.h"

namespace cabt::elf {
namespace {

Object sampleObject() {
  Object obj;
  obj.machine = Machine::kTrc32;
  obj.entry = 0x80000000;

  Section text;
  text.name = ".text";
  text.addr = 0x80000000;
  text.executable = true;
  text.data = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  obj.sections.push_back(text);

  Section data;
  data.name = ".data";
  data.addr = 0xd0000000;
  data.writable = true;
  data.data = {0xaa, 0xbb};
  obj.sections.push_back(data);

  Section bss;
  bss.name = ".bss";
  bss.kind = SectionKind::kNobits;
  bss.addr = 0xd0001000;
  bss.writable = true;
  bss.mem_size = 256;
  obj.sections.push_back(bss);

  obj.symbols.push_back({"_start", 0x80000000, 0, SymbolBinding::kGlobal});
  obj.symbols.push_back({"buffer", 0xd0001000, 2, SymbolBinding::kLocal});
  return obj;
}

TEST(Elf, RoundTripPreservesEverything) {
  const Object obj = sampleObject();
  const Object back = read(write(obj));

  EXPECT_EQ(back.machine, obj.machine);
  EXPECT_EQ(back.entry, obj.entry);
  ASSERT_EQ(back.sections.size(), obj.sections.size());
  for (size_t i = 0; i < obj.sections.size(); ++i) {
    SCOPED_TRACE(obj.sections[i].name);
    EXPECT_EQ(back.sections[i].name, obj.sections[i].name);
    EXPECT_EQ(back.sections[i].addr, obj.sections[i].addr);
    EXPECT_EQ(back.sections[i].kind, obj.sections[i].kind);
    EXPECT_EQ(back.sections[i].data, obj.sections[i].data);
    EXPECT_EQ(back.sections[i].sizeInMemory(),
              obj.sections[i].sizeInMemory());
    EXPECT_EQ(back.sections[i].writable, obj.sections[i].writable);
    EXPECT_EQ(back.sections[i].executable, obj.sections[i].executable);
  }
  ASSERT_EQ(back.symbols.size(), obj.symbols.size());
  const Symbol* start = back.findSymbol("_start");
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->value, 0x80000000u);
  const Symbol* buffer = back.findSymbol("buffer");
  ASSERT_NE(buffer, nullptr);
  EXPECT_EQ(buffer->binding, SymbolBinding::kLocal);
  EXPECT_EQ(buffer->section, 2);
}

TEST(Elf, WriteIsDeterministic) {
  const Object obj = sampleObject();
  EXPECT_EQ(write(obj), write(obj));
}

TEST(Elf, DoubleRoundTripIsByteIdentical) {
  const std::vector<uint8_t> first = write(sampleObject());
  const std::vector<uint8_t> second = write(read(first));
  EXPECT_EQ(first, second);
}

TEST(Elf, SectionLookupHelpers) {
  const Object obj = sampleObject();
  EXPECT_NE(obj.findSection(".text"), nullptr);
  EXPECT_EQ(obj.findSection(".nope"), nullptr);
  EXPECT_EQ(obj.sectionContaining(0x80000004)->name, ".text");
  EXPECT_EQ(obj.sectionContaining(0xd0001080)->name, ".bss");
  EXPECT_EQ(obj.sectionContaining(0x12345678), nullptr);
}

TEST(Elf, ReadSpansSectionData) {
  const Object obj = sampleObject();
  const auto bytes = obj.read(0x80000002, 4);
  EXPECT_EQ(bytes, (std::vector<uint8_t>{0x03, 0x04, 0x05, 0x06}));
  // NOBITS reads as zeros.
  EXPECT_EQ(obj.read(0xd0001000, 2), (std::vector<uint8_t>{0, 0}));
  EXPECT_THROW(obj.read(0x80000006, 4), Error);  // crosses the end
}

TEST(Elf, RejectsGarbageInput) {
  EXPECT_THROW(read({1, 2, 3}), Error);
  std::vector<uint8_t> bad(64, 0);
  EXPECT_THROW(read(bad), Error);
  // Corrupt the magic of a valid file.
  std::vector<uint8_t> img = write(sampleObject());
  img[1] = 'X';
  EXPECT_THROW(read(img), Error);
}

TEST(Elf, RejectsWrongClass) {
  std::vector<uint8_t> img = write(sampleObject());
  img[4] = 2;  // ELFCLASS64
  EXPECT_THROW(read(img), Error);
}

TEST(Elf, NobitsSectionWithDataIsRejected) {
  Object obj = sampleObject();
  obj.sections[2].data = {1};
  EXPECT_THROW(write(obj), Error);
}

}  // namespace
}  // namespace cabt::elf
