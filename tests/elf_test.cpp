// ELF32 writer/reader round-trip tests.
#include <gtest/gtest.h>

#include "common/error.h"
#include "elf/elf.h"

namespace cabt::elf {
namespace {

Object sampleObject() {
  Object obj;
  obj.machine = Machine::kTrc32;
  obj.entry = 0x80000000;

  Section text;
  text.name = ".text";
  text.addr = 0x80000000;
  text.executable = true;
  text.data = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  obj.sections.push_back(text);

  Section data;
  data.name = ".data";
  data.addr = 0xd0000000;
  data.writable = true;
  data.data = {0xaa, 0xbb};
  obj.sections.push_back(data);

  Section bss;
  bss.name = ".bss";
  bss.kind = SectionKind::kNobits;
  bss.addr = 0xd0001000;
  bss.writable = true;
  bss.mem_size = 256;
  obj.sections.push_back(bss);

  obj.symbols.push_back({"_start", 0x80000000, 0, SymbolBinding::kGlobal});
  obj.symbols.push_back({"buffer", 0xd0001000, 2, SymbolBinding::kLocal});
  return obj;
}

TEST(Elf, RoundTripPreservesEverything) {
  const Object obj = sampleObject();
  const Object back = read(write(obj));

  EXPECT_EQ(back.machine, obj.machine);
  EXPECT_EQ(back.entry, obj.entry);
  ASSERT_EQ(back.sections.size(), obj.sections.size());
  for (size_t i = 0; i < obj.sections.size(); ++i) {
    SCOPED_TRACE(obj.sections[i].name);
    EXPECT_EQ(back.sections[i].name, obj.sections[i].name);
    EXPECT_EQ(back.sections[i].addr, obj.sections[i].addr);
    EXPECT_EQ(back.sections[i].kind, obj.sections[i].kind);
    EXPECT_EQ(back.sections[i].data, obj.sections[i].data);
    EXPECT_EQ(back.sections[i].sizeInMemory(),
              obj.sections[i].sizeInMemory());
    EXPECT_EQ(back.sections[i].writable, obj.sections[i].writable);
    EXPECT_EQ(back.sections[i].executable, obj.sections[i].executable);
  }
  ASSERT_EQ(back.symbols.size(), obj.symbols.size());
  const Symbol* start = back.findSymbol("_start");
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->value, 0x80000000u);
  const Symbol* buffer = back.findSymbol("buffer");
  ASSERT_NE(buffer, nullptr);
  EXPECT_EQ(buffer->binding, SymbolBinding::kLocal);
  EXPECT_EQ(buffer->section, 2);
}

TEST(Elf, WriteIsDeterministic) {
  const Object obj = sampleObject();
  EXPECT_EQ(write(obj), write(obj));
}

TEST(Elf, DoubleRoundTripIsByteIdentical) {
  const std::vector<uint8_t> first = write(sampleObject());
  const std::vector<uint8_t> second = write(read(first));
  EXPECT_EQ(first, second);
}

TEST(Elf, SectionLookupHelpers) {
  const Object obj = sampleObject();
  EXPECT_NE(obj.findSection(".text"), nullptr);
  EXPECT_EQ(obj.findSection(".nope"), nullptr);
  EXPECT_EQ(obj.sectionContaining(0x80000004)->name, ".text");
  EXPECT_EQ(obj.sectionContaining(0xd0001080)->name, ".bss");
  EXPECT_EQ(obj.sectionContaining(0x12345678), nullptr);
}

TEST(Elf, ReadSpansSectionData) {
  const Object obj = sampleObject();
  const auto bytes = obj.read(0x80000002, 4);
  EXPECT_EQ(bytes, (std::vector<uint8_t>{0x03, 0x04, 0x05, 0x06}));
  // NOBITS reads as zeros.
  EXPECT_EQ(obj.read(0xd0001000, 2), (std::vector<uint8_t>{0, 0}));
  EXPECT_THROW(obj.read(0x80000006, 4), Error);  // crosses the end
}

TEST(Elf, RejectsGarbageInput) {
  EXPECT_THROW(read({1, 2, 3}), Error);
  std::vector<uint8_t> bad(64, 0);
  EXPECT_THROW(read(bad), Error);
  // Corrupt the magic of a valid file.
  std::vector<uint8_t> img = write(sampleObject());
  img[1] = 'X';
  EXPECT_THROW(read(img), Error);
}

TEST(Elf, RejectsWrongClass) {
  std::vector<uint8_t> img = write(sampleObject());
  img[4] = 2;  // ELFCLASS64
  EXPECT_THROW(read(img), Error);
}

TEST(Elf, NobitsSectionWithDataIsRejected) {
  Object obj = sampleObject();
  obj.sections[2].data = {1};
  EXPECT_THROW(write(obj), Error);
}

// ---- malformed-image hardening ----------------------------------------
// Images loaded from disk are untrusted input: every out-of-range
// header field must produce a cabt::Error with a useful message, never
// an out-of-bounds read.

uint16_t peek16(const std::vector<uint8_t>& b, size_t off) {
  return static_cast<uint16_t>(b.at(off) | (b.at(off + 1) << 8));
}
uint32_t peek32(const std::vector<uint8_t>& b, size_t off) {
  return b.at(off) | (b.at(off + 1) << 8) | (b.at(off + 2) << 16) |
         (static_cast<uint32_t>(b.at(off + 3)) << 24);
}
void poke16(std::vector<uint8_t>& b, size_t off, uint16_t v) {
  b.at(off) = static_cast<uint8_t>(v);
  b.at(off + 1) = static_cast<uint8_t>(v >> 8);
}
void poke32(std::vector<uint8_t>& b, size_t off, uint32_t v) {
  for (size_t i = 0; i < 4; ++i) {
    b.at(off + i) = static_cast<uint8_t>(v >> (8 * i));
  }
}

constexpr size_t kShoffField = 32;    // e_shoff
constexpr size_t kShnumField = 48;    // e_shnum
constexpr size_t kShstrndxField = 50; // e_shstrndx
constexpr size_t kShentBytes = 40;    // sizeof(Elf32_Shdr)

/// The section header table entry for section `index`.
size_t shdrAt(const std::vector<uint8_t>& img, size_t index) {
  return peek32(img, kShoffField) + index * kShentBytes;
}

TEST(Elf, EveryTruncationIsRejected) {
  const std::vector<uint8_t> img = write(sampleObject());
  // The section header table sits at the end of the writer's layout, so
  // every proper prefix is missing something a reader must notice.
  for (size_t n = 0; n < img.size(); n += 7) {
    SCOPED_TRACE("truncated to " + std::to_string(n) + " bytes");
    const std::vector<uint8_t> cut(img.begin(),
                                   img.begin() + static_cast<ptrdiff_t>(n));
    EXPECT_THROW(read(cut), Error);
  }
}

TEST(Elf, RejectsSectionTableOutOfBounds) {
  {  // shoff past the end: the table does not fit
    std::vector<uint8_t> img = write(sampleObject());
    poke32(img, kShoffField, static_cast<uint32_t>(img.size()));
    EXPECT_THROW(read(img), Error);
  }
  {  // huge shoff: must not wrap in 32-bit arithmetic
    std::vector<uint8_t> img = write(sampleObject());
    poke32(img, kShoffField, 0xffffffffu);
    EXPECT_THROW(read(img), Error);
  }
  {  // inflated shnum: entries would run past the end
    std::vector<uint8_t> img = write(sampleObject());
    poke16(img, kShnumField, 0xffff);
    EXPECT_THROW(read(img), Error);
  }
  {  // shstrndx out of range
    std::vector<uint8_t> img = write(sampleObject());
    poke16(img, kShstrndxField, peek16(img, kShnumField));
    EXPECT_THROW(read(img), Error);
  }
}

TEST(Elf, RejectsSectionContentsOutOfBounds) {
  const std::vector<uint8_t> good = write(sampleObject());
  const size_t shnum = peek16(good, kShnumField);
  for (size_t i = 1; i < shnum; ++i) {
    SCOPED_TRACE("section " + std::to_string(i) + " size inflated");
    std::vector<uint8_t> img = good;
    // sh_size lives at +20; oversize every section in turn — progbits
    // payloads, both string tables and the symtab all have to be
    // range-checked (nobits carries no file bytes and stays valid).
    const size_t hdr = shdrAt(img, i);
    const uint32_t type = peek32(img, hdr + 4);
    poke32(img, hdr + 20, 0x10000000u);
    if (type == 8) {  // SHT_NOBITS: size is memory size, not file bytes
      EXPECT_NO_THROW(read(img));
    } else {
      EXPECT_THROW(read(img), Error);
    }
  }
  {  // section name offset outside the string table
    std::vector<uint8_t> img = good;
    poke32(img, shdrAt(img, 1), 0x00ffffffu);  // sh_name
    EXPECT_THROW(read(img), Error);
  }
}

TEST(Elf, RejectsMalformedSymtab) {
  const std::vector<uint8_t> good = write(sampleObject());
  const size_t shnum = peek16(good, kShnumField);
  size_t symtab_hdr = 0;
  for (size_t i = 1; i < shnum; ++i) {
    if (peek32(good, shdrAt(good, i) + 4) == 2) {  // SHT_SYMTAB
      symtab_hdr = shdrAt(good, i);
    }
  }
  ASSERT_NE(symtab_hdr, 0u);
  const uint32_t sym_off = peek32(good, symtab_hdr + 16);
  const uint32_t sym_size = peek32(good, symtab_hdr + 20);
  {  // size not a multiple of the 16-byte entry size
    std::vector<uint8_t> img = good;
    poke32(img, symtab_hdr + 20, sym_size - 3);
    EXPECT_THROW(read(img), Error);
  }
  {  // symbol name offset outside the symbol string table
    std::vector<uint8_t> img = good;
    poke32(img, sym_off + 16, 0x00ffffffu);  // first real symbol's st_name
    EXPECT_THROW(read(img), Error);
  }
  {  // symbol references a section index past the table
    std::vector<uint8_t> img = good;
    poke16(img, sym_off + 16 + 14, 500);  // st_shndx
    EXPECT_THROW(read(img), Error);
  }
  EXPECT_NO_THROW(read(good));
}

}  // namespace
}  // namespace cabt::elf
