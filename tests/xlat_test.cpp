// Translator unit tests: pass-level checks (blocks, cycle calculation,
// cache analysis blocks, address analysis) and end-to-end functional +
// cycle equivalence of translated programs against the reference ISS.
#include <algorithm>

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/block_graph.h"
#include "iss/iss.h"
#include "platform/platform.h"
#include "trc/assembler.h"
#include "xlat/internal.h"
#include "xlat/translator.h"

namespace cabt::xlat {
namespace {

arch::ArchDescription defaultArch() {
  return arch::ArchDescription::defaultTc10gp();
}

const char* kLoopProgram = R"(
_start: movi d0, 10
        movi d1, 0
loop:   add d1, d1, d0
        addi16 d0, -1
        jnz16 d0, loop
        stw d1, [a0]0       ; a0 is 0 -> plain RAM at 0
        halt
)";

// ---- pass-level tests -----------------------------------------------------

TEST(Blocks, BuildsBasicBlocks) {
  const elf::Object obj = trc::assemble(kLoopProgram);
  const auto blocks = buildBlocks(obj);
  // _start, loop, after-jnz (stw+halt).
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].instrs.size(), 2u);
  EXPECT_EQ(blocks[1].instrs.size(), 3u);
  EXPECT_EQ(blocks[2].instrs.size(), 2u);
  EXPECT_TRUE(blocks[1].endsWithControlTransfer());
}

TEST(Blocks, StaticCyclesMatchIssPerBlock) {
  // Property: the static per-block cycle prediction equals what the ISS
  // measures for each executed block (minus dynamic branch extras, which
  // are zero here because every branch is correctly predicted with no
  // extra: forward-not-taken... use straight-line code to keep it exact).
  const elf::Object obj = trc::assemble(R"(
_start: movi d1, 3
        movha a0, 0xd000
        ldw d2, [a0]0
        add d3, d2, d1
        mul d4, d3, d3
        stw d4, [a0]4
        halt
)");
  const arch::ArchDescription desc = [] {
    arch::ArchDescription d = defaultArch();
    d.icache.enabled = false;
    return d;
  }();
  auto blocks = buildBlocks(obj);
  computeStaticCycles(desc, blocks);
  iss::Iss iss(desc, obj);
  EXPECT_EQ(iss.run(), iss::StopReason::kHalted);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].static_cycles, iss.stats().cycles);
}

TEST(Blocks, UnconditionalBranchExtraIsStatic) {
  const elf::Object obj = trc::assemble(R"(
_start: j next
next:   halt
)");
  const arch::ArchDescription desc = defaultArch();
  auto blocks = buildBlocks(obj);
  computeStaticCycles(desc, blocks);
  ASSERT_EQ(blocks.size(), 2u);
  // j: 1 issue cycle + taken_predicted_extra.
  EXPECT_EQ(blocks[0].static_cycles,
            1u + desc.branch.taken_predicted_extra);
}

TEST(Cabs, SplitAtCacheLineBoundaries) {
  // 16-byte lines; five 4-byte instructions cross one boundary.
  const elf::Object obj = trc::assemble(R"(
_start: nop
        nop
        nop
        nop
        halt
)");
  auto blocks = buildBlocks(obj);
  computeCacheAnalysisBlocks(defaultArch().icache, blocks);
  ASSERT_EQ(blocks.size(), 1u);
  ASSERT_EQ(blocks[0].cabs.size(), 2u);
  EXPECT_EQ(blocks[0].cabs[0].first_addr, 0x80000000u);
  EXPECT_EQ(blocks[0].cabs[1].first_addr, 0x80000010u);
  EXPECT_EQ(blocks[0].cab_starts[1], 4u);
  // Tag word carries the valid bit.
  EXPECT_EQ(blocks[0].cabs[0].tag_word & 1u, 1u);
}

TEST(Cabs, MixedWidthInstructionsUseFirstByteRule) {
  // 16-bit instructions shift the line boundary.
  const elf::Object obj = trc::assemble(R"(
_start: nop16
        nop16
        nop16
        nop16
        nop16
        nop16
        nop16
        nop           ; starts at offset 14, first byte still line 0
        halt          ; starts at offset 18 -> line 1
)");
  auto blocks = buildBlocks(obj);
  computeCacheAnalysisBlocks(defaultArch().icache, blocks);
  ASSERT_EQ(blocks[0].cabs.size(), 2u);
  EXPECT_EQ(blocks[0].cab_starts[1], 8u);  // the halt
}

TEST(AddrAnalysis, ConstantPropagationFindsEffectiveAddresses) {
  const elf::Object obj = trc::assemble(R"(
_start: movha a0, 0xd000
        lea a1, a0, 0x100
        ldw d1, [a1]8
        mova a2, d1          ; unknown (data value)
        ldw d2, [a2]0
        halt
)");
  const AddressAnalysis aa =
      analyzeAddresses(defaultArch(), core::BlockGraph::build(obj));
  EXPECT_EQ(aa.ram_accesses, 1u);
  EXPECT_EQ(aa.unknown_accesses, 1u);
  ASSERT_TRUE(aa.known_ea.count(0x80000008));
  EXPECT_EQ(aa.known_ea.at(0x80000008), 0xd0000108u);
}

TEST(AddrAnalysis, ClassifiesIoAccesses) {
  const elf::Object obj = trc::assemble(R"(
_start: movha a0, 0xf000
        stw d1, [a0]0x200
        halt
)");
  const AddressAnalysis aa =
      analyzeAddresses(defaultArch(), core::BlockGraph::build(obj));
  EXPECT_EQ(aa.io_accesses, 1u);
  // The I/O region is identity-mapped: no MOVHA rewrite for it.
  EXPECT_TRUE(aa.movha_rewrites.empty());
}

TEST(AddrAnalysis, RewritesMovhaIntoRemappedRegion) {
  const elf::Object obj = trc::assemble(R"(
_start: movha a0, 0xd000
        halt
)");
  const AddressAnalysis aa =
      analyzeAddresses(defaultArch(), core::BlockGraph::build(obj));
  // 0xd0000000 remaps to 0x00800000: new high immediate is 0x0080.
  ASSERT_EQ(aa.movha_rewrites.size(), 1u);
  EXPECT_EQ(aa.movha_rewrites.begin()->second, 0x0080);
}

TEST(AddrAnalysis, JoinOverBranchesIsConservative) {
  const elf::Object obj = trc::assemble(R"(
_start: movi d0, 1
        movi d1, 2
        jeq d0, d1, other
        movha a0, 0xd000
        j join
other:  movha a0, 0xd001
join:   ldw d2, [a0]0
        halt
)");
  const AddressAnalysis aa =
      analyzeAddresses(defaultArch(), core::BlockGraph::build(obj));
  // a0 differs on the two paths: the access must be unknown.
  EXPECT_EQ(aa.unknown_accesses, 1u);
  EXPECT_EQ(aa.ram_accesses, 0u);
}

// ---- end-to-end -----------------------------------------------------------

struct EndToEnd {
  arch::ArchDescription desc;
  elf::Object source;
  std::unique_ptr<iss::Iss> reference;
  std::unique_ptr<platform::EmulationPlatform> plat;
  TranslationResult translation;
  platform::RunResult run;
};

EndToEnd runBoth(std::string_view program, DetailLevel level,
                 bool icache_on = true) {
  EndToEnd e;
  e.desc = defaultArch();
  e.desc.icache.enabled = icache_on;
  e.source = trc::assemble(program);
  e.reference = std::make_unique<iss::Iss>(e.desc, e.source);
  EXPECT_EQ(e.reference->run(), iss::StopReason::kHalted);

  TranslateOptions opts;
  opts.level = level;
  e.translation = translate(e.desc, e.source, opts);
  e.plat = std::make_unique<platform::EmulationPlatform>(e.desc,
                                                         e.translation.image);
  e.run = e.plat->run();
  EXPECT_EQ(e.run.state, vliw::RunState::kHalted);
  return e;
}

class AllLevels : public ::testing::TestWithParam<DetailLevel> {};

TEST_P(AllLevels, LoopProgramFunctionallyEquivalent) {
  EndToEnd e = runBoth(kLoopProgram, GetParam());
  EXPECT_EQ(e.plat->srcD(1), 55u);
  EXPECT_EQ(compareFinalState(e.desc, *e.reference, *e.plat, e.source), "");
}

TEST_P(AllLevels, CallsAndMemory) {
  EndToEnd e = runBoth(R"(
_start: movha a10, 0xd001     ; stack
        movha a0, hi(arr)
        lea a0, a0, lo(arr)
        movi d0, 5
        movi d5, 0
loop:   ldw d1, [a0]0
        jl accum
        lea a0, a0, 4
        addi16 d0, -1
        jnz16 d0, loop
        movha a1, hi(out)
        lea a1, a1, lo(out)
        stw d5, [a1]0
        halt
accum:  add d5, d5, d1
        ret16
        .data
arr:    .word 3, 1, 4, 1, 5
out:    .word 0
)", GetParam());
  EXPECT_EQ(e.plat->srcD(5), 14u);
  EXPECT_EQ(compareFinalState(e.desc, *e.reference, *e.plat, e.source), "");
}

TEST_P(AllLevels, MixedWidthAndAllCompares) {
  EndToEnd e = runBoth(R"(
_start: movi d1, -5
        movi d2, 7
        lt d3, d1, d2
        ltu d4, d1, d2
        ge d5, d1, d2
        geu d6, d1, d2
        eq d7, d1, d1
        ne d8, d1, d2
        movi16 d9, 3
        addi16 d9, 4
        mov16 d10, d9
        add16 d10, d2
        sub16 d10, d1
        halt
)", GetParam());
  EXPECT_EQ(compareFinalState(e.desc, *e.reference, *e.plat, e.source), "");
}

INSTANTIATE_TEST_SUITE_P(
    Levels, AllLevels,
    ::testing::Values(DetailLevel::kFunctional, DetailLevel::kStatic,
                      DetailLevel::kBranchPredict, DetailLevel::kICache),
    [](const ::testing::TestParamInfo<DetailLevel>& info) {
      std::string name = detailLevelName(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(CycleAccuracy, StaticLevelMatchesIssWithoutDynamicEffects) {
  // With the icache off and only correctly-predicted-without-extra
  // branches (forward, not taken), level 1 is already exact.
  const char* program = R"(
_start: movi d0, 1
        movi d1, 2
        jeq d0, d1, skip    ; forward, not taken: no extra
        add d2, d0, d1
skip:   halt
)";
  EndToEnd e = runBoth(program, DetailLevel::kStatic, /*icache_on=*/false);
  EXPECT_EQ(e.run.generated_cycles, e.reference->stats().cycles);
}

TEST(CycleAccuracy, BranchPredictLevelMatchesIssWithoutICache) {
  EndToEnd e = runBoth(kLoopProgram, DetailLevel::kBranchPredict,
                       /*icache_on=*/false);
  EXPECT_EQ(e.run.generated_cycles, e.reference->stats().cycles);
  // The static level alone must UNDERcount (taken-branch extras missing).
  EndToEnd s = runBoth(kLoopProgram, DetailLevel::kStatic,
                       /*icache_on=*/false);
  EXPECT_LT(s.run.generated_cycles, s.reference->stats().cycles);
}

TEST(CycleAccuracy, ICacheLevelMatchesIssExactly) {
  EndToEnd e = runBoth(kLoopProgram, DetailLevel::kICache);
  EXPECT_EQ(e.run.generated_cycles, e.reference->stats().cycles);
  EXPECT_GT(e.run.correction_cycles, 0u);
}

TEST(CycleAccuracy, ICacheLevelExactOnCacheThrashingProgram) {
  // A call target far away forces extra lines; loop re-executes them.
  EndToEnd e = runBoth(R"(
_start: movi d0, 20
loop:   jl f1
        jl f2
        addi16 d0, -1
        jnz16 d0, loop
        halt
f1:     add d1, d1, d0
        ret16
        .align 64
f2:     add d2, d2, d0
        ret16
)", DetailLevel::kICache);
  EXPECT_EQ(e.run.generated_cycles, e.reference->stats().cycles);
  EXPECT_EQ(compareFinalState(e.desc, *e.reference, *e.plat, e.source), "");
}

TEST(CycleAccuracy, SimulatedCacheStateMatchesReferenceModel) {
  EndToEnd e = runBoth(kLoopProgram, DetailLevel::kICache);
  // The cache tag/valid/LRU array in translated memory must equal the
  // reference ISS's behavioural cache model, set by set.
  const arch::ICacheState& ref = e.reference->icache();
  const arch::ICacheModel& m = e.desc.icache;
  const uint32_t stride = (m.ways + 1) * 4;
  const uint32_t base = 0x00280000;  // kCacheDataBase
  for (uint32_t set = 0; set < m.sets; ++set) {
    for (uint32_t way = 0; way < m.ways; ++way) {
      EXPECT_EQ(e.plat->sim().memory().read32(base + set * stride + way * 4),
                ref.tagEntry(set, way))
          << "set " << set << " way " << way;
    }
    const uint32_t lru_word =
        e.plat->sim().memory().read32(base + set * stride + m.ways * 4);
    EXPECT_EQ(lru_word & 0xffu, ref.lruWay(set)) << "set " << set;
  }
}

TEST(Translate, FunctionalLevelHasNoSyncTraffic) {
  EndToEnd e = runBoth(kLoopProgram, DetailLevel::kFunctional);
  EXPECT_EQ(e.run.generated_cycles, 0u);
  EXPECT_EQ(e.plat->sync().numStarts(), 0u);
}

TEST(Translate, DetailLevelsIncreaseCost) {
  uint64_t prev = 0;
  for (const DetailLevel level :
       {DetailLevel::kFunctional, DetailLevel::kStatic,
        DetailLevel::kBranchPredict, DetailLevel::kICache}) {
    EndToEnd e = runBoth(kLoopProgram, level);
    EXPECT_GE(e.run.vliw_cycles, prev)
        << "level " << detailLevelName(level);
    prev = e.run.vliw_cycles;
  }
}

TEST(Translate, StatsAreFilled) {
  const elf::Object obj = trc::assemble(kLoopProgram);
  TranslateOptions opts;
  opts.level = DetailLevel::kICache;
  const TranslationResult r = translate(defaultArch(), obj, opts);
  EXPECT_EQ(r.stats.blocks, 3u);
  EXPECT_GT(r.stats.cabs, 0u);
  EXPECT_GT(r.stats.machine_ops, 0u);
  EXPECT_GT(r.stats.code_bytes, 0u);
  EXPECT_EQ(r.stats.source_instructions, 7u);
  EXPECT_EQ(r.blocks.size(), 3u);
  for (const auto& [src, info] : r.blocks) {
    EXPECT_GT(info.static_cycles, 0u);
  }
}

TEST(Translate, InlineCacheThresholdProducesEquivalentResults) {
  TranslateOptions inline_opts;
  inline_opts.level = DetailLevel::kICache;
  inline_opts.inline_cache_threshold = 1;  // inline everywhere
  const arch::ArchDescription desc = defaultArch();
  const elf::Object obj = trc::assemble(kLoopProgram);

  iss::Iss ref(desc, obj);
  EXPECT_EQ(ref.run(), iss::StopReason::kHalted);

  const TranslationResult r = translate(desc, obj, inline_opts);
  platform::EmulationPlatform plat(desc, r.image);
  const platform::RunResult run = plat.run();
  EXPECT_EQ(run.state, vliw::RunState::kHalted);
  EXPECT_EQ(run.generated_cycles, ref.stats().cycles);
  EXPECT_EQ(plat.srcD(1), 55u);
}

TEST(Translate, RejectsWrongMachine) {
  elf::Object obj;
  obj.machine = elf::Machine::kV6x;
  EXPECT_THROW(translate(defaultArch(), obj), Error);
}

TEST(Translate, InstructionOrientedYieldsPerInstruction) {
  const arch::ArchDescription desc = defaultArch();
  const elf::Object obj = trc::assemble(R"(
_start: movi d1, 7
        addi16 d1, 1
        halt
)");
  TranslateOptions opts;
  opts.level = DetailLevel::kStatic;
  opts.instruction_oriented = true;
  const TranslationResult r = translate(desc, obj, opts);
  EXPECT_EQ(r.instr_map.size(), 3u);

  platform::EmulationPlatform plat(desc, r.image);
  // First yield: before movi executes.
  EXPECT_EQ(plat.sim().run(100000), vliw::RunState::kYielded);
  EXPECT_EQ(plat.srcD(1), 0u);
  // Second yield: movi done.
  EXPECT_EQ(plat.sim().run(100000), vliw::RunState::kYielded);
  EXPECT_EQ(plat.srcD(1), 7u);
  // Third yield: addi16 done.
  EXPECT_EQ(plat.sim().run(100000), vliw::RunState::kYielded);
  EXPECT_EQ(plat.srcD(1), 8u);
  EXPECT_EQ(plat.sim().run(100000), vliw::RunState::kHalted);
}

}  // namespace
}  // namespace cabt::xlat
