// Tests of the discrete-event kernel (sim/), the interrupt path
// (interrupt controller + programmable timer + mailbox) and the
// temporally decoupled multi-core reference board.
//
// The two load-bearing invariants of the design:
//   * single-initiator simulation is *exactly* quantum-invariant — the
//     quantum only slices host execution, never behaviour, because all
//     shared state advances lazily to transaction/sample timestamps;
//   * the block-dispatch engine and per-instruction stepping take every
//     interrupt at the identical cycle count (IRQ sampling happens only
//     at basic-block boundaries, which both engines share).
#include <gtest/gtest.h>

#include <vector>

#include "platform/platform.h"
#include "sim/kernel.h"
#include "soc/interrupts.h"
#include "trc/assembler.h"
#include "workloads/workloads.h"

namespace cabt {
namespace {

// ---- kernel ---------------------------------------------------------

TEST(Kernel, DispatchesInTimeOrderWithStableTies) {
  sim::Kernel k;
  std::vector<int> order;
  k.schedule(10, [&] { order.push_back(1); });
  k.schedule(5, [&] { order.push_back(2); });
  k.schedule(10, [&] { order.push_back(3); });
  EXPECT_EQ(k.run(), 10u);
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
  EXPECT_EQ(k.eventsDispatched(), 3u);
  EXPECT_TRUE(k.idle());
}

TEST(Kernel, RunLimitLeavesLaterEventsQueued) {
  sim::Kernel k;
  int fired = 0;
  k.schedule(10, [&] { ++fired; });
  k.schedule(20, [&] { ++fired; });
  k.run(15);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(k.idle());
  k.run();
  EXPECT_EQ(fired, 2);
}

class CountingClock : public sim::ClockedProcess {
 public:
  CountingClock(sim::Cycle period, int limit)
      : sim::ClockedProcess("clock", period), limit_(limit) {}
  void tick(sim::Kernel& kernel) override {
    stamps.push_back(kernel.now());
    if (static_cast<int>(stamps.size()) == limit_) {
      stop();
    }
  }
  std::vector<sim::Cycle> stamps;

 private:
  int limit_;
};

TEST(Kernel, ClockedProcessTicksAtItsPeriod) {
  sim::Kernel k;
  CountingClock clock(7, 4);
  k.addProcess(&clock, 7);
  k.run();
  EXPECT_EQ(clock.stamps, (std::vector<sim::Cycle>{7, 14, 21, 28}));
}

class Waiter : public sim::Process {
 public:
  explicit Waiter(sim::Event* event)
      : sim::Process("waiter"), event_(event) {}
  void activate(sim::Kernel& kernel) override {
    if (!woken) {
      woken = true;
      wake_time = kernel.now();
      return;  // first activation is the notify itself in this test
    }
  }
  sim::Event* event_;
  bool woken = false;
  sim::Cycle wake_time = 0;
};

TEST(Kernel, EventNotifyWakesParkedProcesses) {
  sim::Kernel k;
  sim::Event event(&k, "done");
  Waiter w(&event);
  event.wait(&w);
  EXPECT_EQ(event.numWaiting(), 1u);
  k.schedule(50, [&] { event.notify(60); });
  k.run();
  EXPECT_TRUE(w.woken);
  EXPECT_EQ(w.wake_time, 60u);
  EXPECT_EQ(event.numWaiting(), 0u);
}

// ---- interrupt-path devices -----------------------------------------

TEST(ProgrammableTimer, ExpiriesAreAPureFunctionOfTime) {
  // The same interval advanced in one jump or in ragged slices produces
  // the same expiry count and pending state — the property behind exact
  // quantum invariance.
  soc::InterruptController intc_a;
  soc::ProgrammableTimer a;
  a.setIrqTarget(&intc_a, 0);
  a.write(soc::ProgrammableTimer::kLoadOffset, 100, 4, 0);
  a.write(soc::ProgrammableTimer::kCtrlOffset, 3, 4, 0);  // enable|periodic
  a.advanceTo(0, 1005);

  soc::InterruptController intc_b;
  soc::ProgrammableTimer b;
  b.setIrqTarget(&intc_b, 0);
  b.write(soc::ProgrammableTimer::kLoadOffset, 100, 4, 0);
  b.write(soc::ProgrammableTimer::kCtrlOffset, 3, 4, 0);
  uint64_t t = 0;
  for (const uint64_t step : {1, 7, 99, 100, 101, 250, 447}) {
    b.advanceTo(t, t + step);
    t += step;
  }
  b.advanceTo(t, 1005);

  EXPECT_EQ(a.expiries(), 10u);
  EXPECT_EQ(b.expiries(), a.expiries());
  EXPECT_EQ(intc_a.pending(), intc_b.pending());
}

TEST(ProgrammableTimer, ClearingLoadWhileArmedStopsInsteadOfSpinning) {
  soc::ProgrammableTimer t;
  t.write(soc::ProgrammableTimer::kLoadOffset, 100, 4, 0);
  t.write(soc::ProgrammableTimer::kCtrlOffset, 3, 4, 0);  // enable|periodic
  t.advanceTo(0, 150);
  EXPECT_EQ(t.expiries(), 1u);
  // A reload value of 0 must stop the timer at its next expiry, not spin
  // forever on a zero period.
  t.write(soc::ProgrammableTimer::kLoadOffset, 0, 4, 150);
  t.advanceTo(150, 100000);
  EXPECT_EQ(t.expiries(), 2u);
  EXPECT_FALSE(t.enabled());
}

TEST(ProgrammableTimer, OneShotDisablesAfterExpiry) {
  soc::ProgrammableTimer t;
  t.write(soc::ProgrammableTimer::kLoadOffset, 50, 4, 0);
  t.write(soc::ProgrammableTimer::kCtrlOffset, 1, 4, 0);  // enable only
  EXPECT_EQ(t.read(soc::ProgrammableTimer::kCountOffset, 4, 20), 30u);
  t.advanceTo(0, 500);
  EXPECT_EQ(t.expiries(), 1u);
  EXPECT_FALSE(t.enabled());
}

TEST(InterruptController, TakeMaskAckEoiprotocol) {
  soc::InterruptController intc;
  intc.write(soc::InterruptController::kVectorOffset, 0x8000'0040, 4, 0);
  intc.write(soc::InterruptController::kEnableOffset, 0x1, 4, 0);
  EXPECT_FALSE(intc.takeIrq(0).has_value());  // master disabled
  intc.write(soc::InterruptController::kCtrlOffset, 1, 4, 0);
  EXPECT_FALSE(intc.takeIrq(0).has_value());  // nothing pending
  intc.raise(0);
  intc.raise(5);  // line 5 is not enabled
  const auto taken = intc.takeIrq(0);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(*taken, 0x8000'0040u);
  EXPECT_TRUE(intc.inService());
  EXPECT_FALSE(intc.takeIrq(0).has_value());  // masked while in service
  intc.write(soc::InterruptController::kAckOffset, 0x1, 4, 0);
  intc.write(soc::InterruptController::kEoiOffset, 0, 4, 0);
  EXPECT_FALSE(intc.takeIrq(0).has_value());  // line 0 acked, 5 disabled
  intc.write(soc::InterruptController::kEnableOffset, 0x21, 4, 0);
  EXPECT_TRUE(intc.takeIrq(0).has_value());  // line 5 now deliverable
}

TEST(Mailbox, FifoOrderStatusAndDoorbell) {
  soc::MailboxDevice mb;
  int rings = 0;
  mb.setDoorbell(0, [&] { ++rings; });
  EXPECT_EQ(mb.read(0x4, 4, 0), 0u);  // empty
  mb.write(0x0, 11, 4, 0);
  mb.write(0x0, 22, 4, 0);
  EXPECT_EQ(mb.read(0x4, 4, 0), 1u);  // has data, not full
  mb.write(0x0, 33, 4, 0);
  mb.write(0x0, 44, 4, 0);
  EXPECT_EQ(mb.read(0x4, 4, 0), 3u);  // has data | full
  mb.write(0x0, 55, 4, 0);            // dropped
  EXPECT_EQ(mb.dropped(), 1u);
  EXPECT_EQ(mb.read(0x0, 4, 0), 11u);
  EXPECT_EQ(mb.read(0x0, 4, 0), 22u);
  EXPECT_EQ(mb.read(0x0, 4, 0), 33u);
  EXPECT_EQ(mb.read(0x0, 4, 0), 44u);
  EXPECT_EQ(mb.read(0x4, 4, 0), 0u);
  mb.write(0x8, 0, 4, 0);  // doorbell 0
  EXPECT_EQ(rings, 1);
}

// ---- interrupt-driven execution on the reference board --------------

struct ScenarioRun {
  iss::IssStats stats;
  uint32_t checksum = 0;
  uint64_t bus_cycle = 0;
  uint64_t timer_expiries = 0;
  uint64_t irqs_delivered = 0;
  uint32_t d14 = 0;
};

/// Engine variants crossed with the IRQ scenario: stepping, the lookup
/// and chained block engines, and the trace engine with a threshold low
/// enough that the spin-wait loop forms superblocks almost immediately
/// (so interrupts routinely arrive at trace-internal boundaries and
/// redirect control off a speculated guard).
struct EngineVariant {
  const char* name;
  bool use_block_cache;
  iss::DispatchMode mode;
  uint32_t trace_threshold;
};

constexpr EngineVariant kEngineVariants[] = {
    {"stepping", false, iss::DispatchMode::kLookup, 64},
    {"lookup", true, iss::DispatchMode::kLookup, 64},
    {"chained", true, iss::DispatchMode::kChained, 64},
    {"traces", true, iss::DispatchMode::kChainedTraces, 2},
};

ScenarioRun runIrqTicks(const EngineVariant& engine, sim::Cycle quantum,
                        xlat::DetailLevel level = xlat::DetailLevel::kICache) {
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const workloads::Workload& w = workloads::get("irq_ticks");
  const elf::Object obj = workloads::assemble(w);
  platform::BoardConfig cfg;
  cfg.iss = platform::issConfigFor(level);
  cfg.iss.use_block_cache = engine.use_block_cache;
  cfg.iss.dispatch_mode = engine.mode;
  cfg.iss.trace_threshold = engine.trace_threshold;
  cfg.iss.extra_leaders = {platform::symbolAddr(obj, w.irq_handler)};
  cfg.quantum = quantum;
  platform::ReferenceBoard board(desc, {&obj}, cfg);
  EXPECT_EQ(board.run(), iss::StopReason::kHalted);
  ScenarioRun r;
  r.stats = board.iss().stats();
  r.checksum = workloads::readChecksum(obj, board.iss().memory());
  r.bus_cycle = board.board().bus.socCycle();
  r.timer_expiries = board.ptimer().expiries();
  r.irqs_delivered = board.intc(0).irqsTaken();
  r.d14 = board.iss().d(14);
  return r;
}

void expectIdentical(const ScenarioRun& a, const ScenarioRun& b) {
  EXPECT_EQ(a.stats.instructions, b.stats.instructions);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.pipeline_cycles, b.stats.pipeline_cycles);
  EXPECT_EQ(a.stats.branch_extra, b.stats.branch_extra);
  EXPECT_EQ(a.stats.cache_penalty, b.stats.cache_penalty);
  EXPECT_EQ(a.stats.blocks, b.stats.blocks);
  EXPECT_EQ(a.stats.irqs_taken, b.stats.irqs_taken);
  EXPECT_EQ(a.stats.irq_entry_cycles, b.stats.irq_entry_cycles);
  EXPECT_EQ(a.stats.io_reads, b.stats.io_reads);
  EXPECT_EQ(a.stats.io_writes, b.stats.io_writes);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.bus_cycle, b.bus_cycle);
  EXPECT_EQ(a.timer_expiries, b.timer_expiries);
  EXPECT_EQ(a.irqs_delivered, b.irqs_delivered);
  EXPECT_EQ(a.d14, b.d14);
}

TEST(InterruptDriven, WorkloadRetiresWithExpectedChecksum) {
  const ScenarioRun r = runIrqTicks(kEngineVariants[3], 1024);
  EXPECT_EQ(r.checksum, 164u);
  EXPECT_EQ(r.d14, 8u);
  EXPECT_EQ(r.stats.irqs_taken, 8u);
  EXPECT_EQ(r.irqs_delivered, 8u);
  EXPECT_GE(r.timer_expiries, 8u);
  EXPECT_GT(r.stats.irq_entry_cycles, 0u);
  // The spin-wait loop really did run as guarded superblocks, and
  // interrupts really did bail traces at internal boundaries.
  EXPECT_GT(r.stats.trace_dispatches, 0u);
  EXPECT_GT(r.stats.guard_bails, 0u);
}

// The step()-fallback proof: every dispatch engine — lookup, chained and
// the trace engine included — and pure per-instruction execution take
// all 8 interrupts at identical cycle counts and retire identically.
TEST(InterruptDriven, AllDispatchEnginesTakeIrqsIdentically) {
  for (const xlat::DetailLevel level :
       {xlat::DetailLevel::kFunctional, xlat::DetailLevel::kStatic,
        xlat::DetailLevel::kBranchPredict, xlat::DetailLevel::kICache}) {
    SCOPED_TRACE(xlat::detailLevelName(level));
    const ScenarioRun slow = runIrqTicks(kEngineVariants[0], 1024, level);
    EXPECT_EQ(slow.checksum, 164u);
    for (size_t v = 1; v < std::size(kEngineVariants); ++v) {
      SCOPED_TRACE(kEngineVariants[v].name);
      expectIdentical(runIrqTicks(kEngineVariants[v], 1024, level), slow);
    }
  }
}

// Exact temporal-decoupling invariance: with one initiator, the quantum
// slices host execution but never behaviour — final SoC cycle and all
// state are bit-identical for quantum 1, 16, 256 and 4096, for the
// chained and trace engines alike (a quantum boundary may now fall on a
// trace-internal block boundary and must yield there).
TEST(InterruptDriven, GeneratedCyclesAreQuantumInvariant) {
  const ScenarioRun base = runIrqTicks(kEngineVariants[2], 1);
  EXPECT_EQ(base.checksum, 164u);
  for (const sim::Cycle quantum : {16u, 256u, 4096u}) {
    SCOPED_TRACE("quantum " + std::to_string(quantum));
    expectIdentical(base, runIrqTicks(kEngineVariants[2], quantum));
  }
  for (const sim::Cycle quantum : {1u, 16u, 256u, 4096u}) {
    SCOPED_TRACE("trace engine, quantum " + std::to_string(quantum));
    expectIdentical(base, runIrqTicks(kEngineVariants[3], quantum));
  }
  // The stepping engine is quantum-invariant too, and agrees.
  expectIdentical(base, runIrqTicks(kEngineVariants[0], 4096));
}

// A breakpoint on the interrupt handler entry must hit on every
// delivery, even when the core is resumed from another breakpoint at the
// very boundary where the interrupt redirects the pc — the resume's
// step-over is keyed to the stop address, not consumed blindly.
TEST(InterruptDriven, HandlerBreakpointHitsOnEveryDelivery) {
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const workloads::Workload& w = workloads::get("irq_ticks");
  const elf::Object obj = workloads::assemble(w);
  platform::BoardConfig cfg;
  cfg.iss.extra_leaders = {platform::symbolAddr(obj, w.irq_handler)};
  platform::ReferenceBoard board(desc, {&obj}, cfg);
  iss::Iss& core = board.iss();
  const uint32_t wait_addr = platform::symbolAddr(obj, "wait");
  const uint32_t isr_addr = platform::symbolAddr(obj, "isr");
  core.addBreakpoint(wait_addr);  // hit on every spin iteration
  core.addBreakpoint(isr_addr);
  uint64_t isr_stops = 0;
  uint64_t other_stops = 0;
  while (core.run() == iss::StopReason::kDebugBreak) {
    if (core.pc() == isr_addr) {
      ++isr_stops;
    } else {
      ASSERT_EQ(core.pc(), wait_addr);
      ++other_stops;
    }
    ASSERT_LT(other_stops, 100000u) << "spin without progress";
  }
  EXPECT_EQ(core.stopReason(), iss::StopReason::kHalted);
  EXPECT_EQ(isr_stops, 8u);  // one stop per delivered interrupt
  EXPECT_EQ(workloads::readChecksum(obj, core.memory()), 164u);
}

// ---- golden-trace snapshots -----------------------------------------
//
// Committed expected values for the stock scenario workloads at one
// pinned configuration (kICache detail, quantum 1024, default engine).
// The simulation is a pure function of the architecture description, so
// these are stable across hosts and compilers; any engine change that
// shifts a cycle count, an IRQ delivery timestamp or the bus traffic
// regresses loudly here instead of silently drifting.

TEST(GoldenTrace, IrqTicks) {
  const ScenarioRun r = runIrqTicks(kEngineVariants[3], 1024);
  EXPECT_EQ(r.stats.instructions, 2126u);
  EXPECT_EQ(r.stats.cycles, 3279u);
  EXPECT_EQ(r.stats.irqs_taken, 8u);
  EXPECT_EQ(r.stats.irq_entry_cycles, 48u);
  EXPECT_EQ(r.checksum, 164u);
  EXPECT_EQ(r.bus_cycle, 3279u);
  EXPECT_EQ(r.timer_expiries, 8u);
}

TEST(GoldenTrace, IrqTicksDeliveryTimestamps) {
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const workloads::Workload& w = workloads::get("irq_ticks");
  const elf::Object obj = workloads::assemble(w);
  platform::BoardConfig cfg;
  cfg.iss = platform::issConfigFor(xlat::DetailLevel::kICache);
  cfg.iss.extra_leaders = {platform::symbolAddr(obj, w.irq_handler)};
  cfg.quantum = 1024;
  platform::ReferenceBoard board(desc, {&obj}, cfg);
  ASSERT_EQ(board.run(), iss::StopReason::kHalted);
  const std::vector<uint64_t> expected = {447,  845,  1245, 1645,
                                          2045, 2445, 2845, 3245};
  EXPECT_EQ(board.intc(0).deliveryTimes(), expected);
  EXPECT_EQ(board.board().bus.log().size(), 23u);
}

TEST(GoldenTrace, ProducerConsumerPair) {
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const workloads::Workload& wp = workloads::get("mc_producer");
  const elf::Object producer = workloads::assemble(wp);
  const elf::Object consumer =
      workloads::assemble(workloads::get("mc_consumer"));
  platform::BoardConfig cfg;
  cfg.iss = platform::issConfigFor(xlat::DetailLevel::kICache);
  cfg.iss.extra_leaders = {platform::symbolAddr(producer, wp.irq_handler)};
  cfg.quantum = 1024;
  platform::ReferenceBoard board(desc, {&producer, &consumer}, cfg);
  ASSERT_EQ(board.run(), iss::StopReason::kHalted);
  EXPECT_EQ(board.core(0).stats().instructions, 3171u);
  EXPECT_EQ(board.core(0).stats().cycles, 4891u);
  EXPECT_EQ(board.core(0).stats().irqs_taken, 16u);
  EXPECT_EQ(board.core(0).stats().irq_entry_cycles, 96u);
  EXPECT_EQ(board.core(1).stats().instructions, 3275u);
  EXPECT_EQ(board.core(1).stats().cycles, 4157u);
  EXPECT_EQ(workloads::readChecksum(producer, board.core(0).memory()),
            1544u);
  EXPECT_EQ(workloads::readChecksum(consumer, board.core(1).memory()),
            1544u);
  EXPECT_EQ(board.board().bus.socCycle(), 4891u);
  EXPECT_EQ(board.ptimer().expiries(), 16u);
  EXPECT_EQ(board.mailbox().pushes(), 16u);
  EXPECT_EQ(board.board().bus.log().size(), 888u);
  std::vector<uint64_t> expected = {346};
  for (uint64_t t = 648; t <= 4848; t += 300) {
    expected.push_back(t);
  }
  EXPECT_EQ(board.intc(0).deliveryTimes(), expected);
}

TEST(GoldenTrace, McWorkerSoloRun) {
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const elf::Object obj = workloads::assemble(workloads::get("mc_worker"));
  platform::BoardConfig cfg;
  cfg.iss = platform::issConfigFor(xlat::DetailLevel::kICache);
  cfg.quantum = 1024;
  platform::ReferenceBoard board(desc, {&obj}, cfg);
  ASSERT_EQ(board.run(), iss::StopReason::kHalted);
  EXPECT_EQ(board.core(0).stats().instructions, 618606u);
  EXPECT_EQ(board.core(0).stats().cycles, 824784u);
  EXPECT_EQ(workloads::readChecksum(obj, board.core(0).memory()),
            1644595200u);
  // One progress beacon per outer iteration, all on the shared bus.
  EXPECT_EQ(board.board().bus.log().size(), 400u);
  EXPECT_EQ(board.board().scratch.reg(7), 1644595200u);
}

// ---- multi-core board -----------------------------------------------

TEST(MultiCore, ProducerConsumerCompletesAtEveryDetailLevelAndQuantum) {
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const workloads::Workload& wp = workloads::get("mc_producer");
  const workloads::Workload& wc = workloads::get("mc_consumer");
  const elf::Object producer = workloads::assemble(wp);
  const elf::Object consumer = workloads::assemble(wc);
  for (const xlat::DetailLevel level :
       {xlat::DetailLevel::kFunctional, xlat::DetailLevel::kStatic,
        xlat::DetailLevel::kBranchPredict, xlat::DetailLevel::kICache}) {
    for (const sim::Cycle quantum : {1u, 16u, 256u, 4096u}) {
      SCOPED_TRACE(std::string(xlat::detailLevelName(level)) + ", quantum " +
                   std::to_string(quantum));
      platform::BoardConfig cfg;
      cfg.iss = platform::issConfigFor(level);
      cfg.iss.extra_leaders = {platform::symbolAddr(producer, wp.irq_handler)};
      cfg.quantum = quantum;
      platform::ReferenceBoard board(desc, {&producer, &consumer}, cfg);
      ASSERT_EQ(board.run(), iss::StopReason::kHalted);
      ASSERT_EQ(board.numCores(), 2u);
      // The handshake is interleaving-robust: both sides agree on the
      // checksum whatever the quantum or detail level.
      EXPECT_EQ(workloads::readChecksum(producer, board.core(0).memory()),
                1544u);
      EXPECT_EQ(workloads::readChecksum(consumer, board.core(1).memory()),
                1544u);
      EXPECT_EQ(board.mailbox().pushes(), 16u);
      EXPECT_EQ(board.mailbox().dropped(), 0u);
      EXPECT_EQ(board.mailbox().depth(), 0u);
      EXPECT_EQ(board.core(0).stats().irqs_taken, 16u);
      if (level != xlat::DetailLevel::kFunctional) {
        EXPECT_GT(board.core(0).stats().cycles, 0u);
        EXPECT_GT(board.core(1).stats().cycles, 0u);
      }
    }
  }
}

// A core that runs ahead only ever sees the shared bus at or after its
// own local time; with quantum q the skew between the two cores' local
// clocks at any shared access is bounded by one quantum plus one block.
TEST(MultiCore, CoresStayTemporallyDecoupledButOrdered) {
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const workloads::Workload& wp = workloads::get("mc_producer");
  const elf::Object producer = workloads::assemble(wp);
  const elf::Object consumer =
      workloads::assemble(workloads::get("mc_consumer"));
  platform::BoardConfig cfg;
  cfg.iss.extra_leaders = {platform::symbolAddr(producer, wp.irq_handler)};
  cfg.quantum = 64;
  platform::ReferenceBoard board(desc, {&producer, &consumer}, cfg);
  ASSERT_EQ(board.run(), iss::StopReason::kHalted);
  // The bus clock ends at the maximum of the cores' local times.
  const uint64_t t0 = board.core(0).stats().cycles;
  const uint64_t t1 = board.core(1).stats().cycles;
  EXPECT_EQ(board.board().bus.socCycle(), std::max(t0, t1));
}

}  // namespace
}  // namespace cabt
