// TRC32 ISA tests: encode/decode round trips for every opcode and format,
// timing-operand extraction, and disassembly.
#include <gtest/gtest.h>

#include "common/error.h"
#include "trc/isa.h"

namespace cabt::trc {
namespace {

Instr make(Opc opc, uint8_t rd = 0, uint8_t ra = 0, uint8_t rb = 0,
           int32_t imm = 0) {
  Instr i;
  i.opc = opc;
  i.rd = rd;
  i.ra = ra;
  i.rb = rb;
  i.imm = imm;
  i.addr = 0x80000000;
  i.size = is16Bit(opc) ? 2 : 4;
  return i;
}

/// Representative operand values for a round-trip check of one opcode.
Instr representative(Opc opc) {
  switch (opInfo(opc).fmt) {
    case Format::kRRR:
    case Format::kAAA:
      return make(opc, 3, 7, 15);
    case Format::kRRI:
    case Format::kALI:
    case Format::kMem:
      return make(opc, 2, 14, 0, -1234);
    case Format::kRI:
      return make(opc, 5, 0, 0, opc == Opc::kMovi ? -32768 : 0xbeef);
    case Format::kAI:
      return make(opc, 9, 0, 0, 0xd000);
    case Format::kMovA:
    case Format::kMovD:
      return make(opc, 4, 11);
    case Format::kBrCC:
      return make(opc, 0, 2, 3, -100);
    case Format::kJ:
      return make(opc, 0, 0, 0, 123456);
    case Format::kJI:
      return make(opc, 0, 11);
    case Format::kNone:
    case Format::k16None:
      return make(opc);
    case Format::k16RR:
      return make(opc, 6, 0, 13);
    case Format::k16RI:
      return make(opc, 7, 0, 0, -64);
    case Format::k16BR:
      return make(opc, 8, 0, 0, 63);
    case Format::k16J:
      return make(opc, 0, 0, 0, -1024);
  }
  CABT_FAIL("unreachable");
}

class OpcodeRoundTrip : public ::testing::TestWithParam<Opc> {};

TEST_P(OpcodeRoundTrip, EncodeDecodeIsIdentity) {
  const Instr in = representative(GetParam());
  const std::vector<uint8_t> bytes = encode(in);
  ASSERT_EQ(bytes.size(), in.size);
  const Instr out = decode(bytes.data(), bytes.size(), in.addr);
  EXPECT_EQ(out.opc, in.opc);
  EXPECT_EQ(out.rd, in.rd);
  EXPECT_EQ(out.ra, in.ra);
  EXPECT_EQ(out.rb, in.rb);
  EXPECT_EQ(out.imm, in.imm);
  EXPECT_EQ(out.size, in.size);
}

TEST_P(OpcodeRoundTrip, WidthBitMatchesEncodingSize) {
  const Instr in = representative(GetParam());
  const std::vector<uint8_t> bytes = encode(in);
  const bool wide = (bytes[0] & 1) != 0;
  EXPECT_EQ(wide, !is16Bit(in.opc));
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::ValuesIn(allOpcodes()),
                         [](const ::testing::TestParamInfo<Opc>& info) {
                           std::string name(opInfo(info.param).mnemonic);
                           return name;
                         });

TEST(Isa, MnemonicLookup) {
  ASSERT_NE(opInfoByMnemonic("add"), nullptr);
  EXPECT_EQ(opInfoByMnemonic("add")->opc, Opc::kAdd);
  EXPECT_EQ(opInfoByMnemonic("jnz16")->opc, Opc::kJnz16);
  EXPECT_EQ(opInfoByMnemonic("nosuch"), nullptr);
}

TEST(Isa, EncodingsAreUniquePerWidth) {
  std::set<std::pair<bool, uint8_t>> seen;
  for (const Opc opc : allOpcodes()) {
    const OpInfo& info = opInfo(opc);
    const auto key = std::make_pair(is16Bit(opc), info.encoding);
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate encoding for " << info.mnemonic;
  }
}

TEST(Isa, ImmediateRangeChecks) {
  EXPECT_THROW(encode(make(Opc::kMovi, 0, 0, 0, 40000)), Error);
  EXPECT_THROW(encode(make(Opc::kMovh, 0, 0, 0, -1)), Error);
  EXPECT_THROW(encode(make(Opc::kMovi16, 0, 0, 0, 100)), Error);
  EXPECT_THROW(encode(make(Opc::kJnz16, 0, 0, 0, 64)), Error);
  EXPECT_NO_THROW(encode(make(Opc::kJnz16, 0, 0, 0, -64)));
}

TEST(Isa, RegisterRangeChecks) {
  EXPECT_THROW(encode(make(Opc::kAdd, 16, 0, 0)), Error);
  EXPECT_THROW(encode(make(Opc::kAdd, 0, 0, 16)), Error);
}

TEST(Isa, DecodeRejectsUnknownOpcodes) {
  // 32-bit pattern with an out-of-range primary opcode (126).
  const uint8_t bad32[] = {0xfd, 0x00, 0x00, 0x00};
  EXPECT_THROW(decode(bad32, 4, 0), Error);
  const uint8_t bad16[] = {0x1e, 0x00};  // 16-bit opcode 15: unused
  EXPECT_THROW(decode(bad16, 2, 0), Error);
}

TEST(Isa, DecodeRejectsTruncatedInput) {
  const Instr in = make(Opc::kAdd, 1, 2, 3);
  const std::vector<uint8_t> bytes = encode(in);
  EXPECT_THROW(decode(bytes.data(), 2, 0), Error);
  EXPECT_THROW(decode(bytes.data(), 1, 0), Error);
}

TEST(Isa, BranchTargetArithmetic) {
  Instr j = make(Opc::kJ, 0, 0, 0, -2);
  j.addr = 0x80000100;
  EXPECT_EQ(j.branchTarget(), 0x800000fcu);
  Instr b16 = make(Opc::kJnz16, 3, 0, 0, 5);
  b16.addr = 0x80000010;
  EXPECT_EQ(b16.branchTarget(), 0x8000001au);
}

TEST(Isa, TimedOpClassification) {
  EXPECT_EQ(make(Opc::kAdd).cls(), arch::OpClass::kIpAlu);
  EXPECT_EQ(make(Opc::kMul).cls(), arch::OpClass::kMul);
  EXPECT_EQ(make(Opc::kLdw).cls(), arch::OpClass::kLoad);
  EXPECT_EQ(make(Opc::kStw).cls(), arch::OpClass::kStore);
  EXPECT_EQ(make(Opc::kLea).cls(), arch::OpClass::kLsAlu);
  EXPECT_EQ(make(Opc::kJl).cls(), arch::OpClass::kCall);
  EXPECT_EQ(make(Opc::kRet16).cls(), arch::OpClass::kBranchInd);
  EXPECT_TRUE(make(Opc::kJ).isControlTransfer());
  EXPECT_FALSE(make(Opc::kNop).isControlTransfer());
}

TEST(Isa, TimedOpOperands) {
  // add d3, d7, d15: dst D3, srcs D7, D15.
  const arch::TimedOp t = make(Opc::kAdd, 3, 7, 15).timedOp();
  EXPECT_EQ(t.dst, 3);
  EXPECT_EQ(t.src1, 7);
  EXPECT_EQ(t.src2, 15);
  // ldw d2, [a14]: dst D2, src A14 (unified id 30).
  const arch::TimedOp l = make(Opc::kLdw, 2, 14).timedOp();
  EXPECT_EQ(l.dst, 2);
  EXPECT_EQ(l.src1, 30);
  // stw d2, [a14]: no dst, srcs D2 and A14.
  const arch::TimedOp s = make(Opc::kStw, 2, 14).timedOp();
  EXPECT_EQ(s.dst, arch::TimedOp::kNoReg);
  EXPECT_EQ(s.src1, 2);
  EXPECT_EQ(s.src2, 30);
  // jl writes the link register A11 (unified id 27).
  const arch::TimedOp c = make(Opc::kJl).timedOp();
  EXPECT_EQ(c.dst, 27);
  // add16 d6, d13 also reads d6.
  const arch::TimedOp a16 = make(Opc::kAdd16, 6, 0, 13).timedOp();
  EXPECT_EQ(a16.dst, 6);
  EXPECT_EQ(a16.src1, 13);
  EXPECT_EQ(a16.src2, 6);
  // mov16 d6, d13 does not read d6.
  const arch::TimedOp m16 = make(Opc::kMov16, 6, 0, 13).timedOp();
  EXPECT_EQ(m16.src2, arch::TimedOp::kNoReg);
}

TEST(Isa, DisassembleFormats) {
  EXPECT_EQ(disassemble(make(Opc::kAdd, 1, 2, 3)), "add d1, d2, d3");
  EXPECT_EQ(disassemble(make(Opc::kLdw, 2, 14, 0, 8)), "ldw d2, [a14]8");
  EXPECT_EQ(disassemble(make(Opc::kSta, 3, 4, 0, -4)), "sta a3, [a4]-4");
  EXPECT_EQ(disassemble(make(Opc::kMovha, 9, 0, 0, 0xd000)),
            "movha a9, 53248");
  EXPECT_EQ(disassemble(make(Opc::kHalt)), "halt");
  Instr j = make(Opc::kJ16, 0, 0, 0, 4);
  EXPECT_EQ(disassemble(j), "j16 0x80000008");
}

}  // namespace
}  // namespace cabt::trc
