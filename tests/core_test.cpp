// Shared block-graph layer tests.
//
// The central property: core::BlockGraph (now the single source of block
// boundaries for both the ISS and the translator) produces exactly the
// block partition and static cycle sums of the pre-refactor
// xlat::buildBlocks / computeStaticCycles pair, which is re-implemented
// here from first principles (decode + leaders + pipeline timer) and
// checked against the graph on every paper workload. The predecoded
// block cache is checked against the translator's cache-analysis blocks
// and against ISS execution.
#include <gtest/gtest.h>

#include "arch/timing.h"
#include "common/strutil.h"
#include "core/block_cache.h"
#include "core/program_artifact.h"
#include "core/block_graph.h"
#include "iss/iss.h"
#include "trc/assembler.h"
#include "trc/program.h"
#include "workloads/workloads.h"
#include "xlat/internal.h"

namespace cabt::core {
namespace {

arch::ArchDescription defaultArch() {
  return arch::ArchDescription::defaultTc10gp();
}

/// Builds a private (uncached) artifact — unit tests exercise the
/// overlay mechanics, fleet_test covers the shared-cache path.
std::shared_ptr<const ProgramArtifact> makeArtifact(
    const arch::ArchDescription& desc, const elf::Object& obj) {
  return std::make_shared<const ProgramArtifact>(
      desc, obj, std::vector<uint32_t>{});
}

/// The pre-refactor block construction (the loop formerly in
/// xlat/blocks.cpp), kept as an independent oracle.
struct OracleBlock {
  uint32_t addr = 0;
  std::vector<trc::Instr> instrs;
};

std::vector<OracleBlock> oracleBlocks(const elf::Object& object) {
  const std::vector<trc::Instr> instrs = trc::decodeText(object);
  const std::set<uint32_t> leaders = trc::findLeaders(object, instrs);
  std::vector<OracleBlock> blocks;
  for (const trc::Instr& instr : instrs) {
    if (blocks.empty() || leaders.count(instr.addr) != 0) {
      blocks.push_back({instr.addr, {}});
    }
    blocks.back().instrs.push_back(instr);
  }
  return blocks;
}

/// The pre-refactor static cycle calculation (pipeline schedule plus the
/// static part of the branch cost).
uint32_t oracleStaticCycles(const arch::ArchDescription& desc,
                            const std::vector<trc::Instr>& instrs) {
  arch::PipelineTimer timer(desc.pipeline);
  for (const trc::Instr& instr : instrs) {
    timer.issue(instr.timedOp());
  }
  uint64_t cycles = timer.cycles();
  const trc::Instr& last = instrs.back();
  if (last.isControlTransfer() &&
      last.cls() != arch::OpClass::kBranchCond) {
    cycles += desc.branch.unconditionalExtra(last.cls());
  }
  return static_cast<uint32_t>(cycles);
}

TEST(BlockGraph, MatchesPreRefactorBlocksOnAllWorkloads) {
  const arch::ArchDescription desc = defaultArch();
  for (const workloads::Workload& w : workloads::all()) {
    SCOPED_TRACE(w.name);
    const elf::Object obj = workloads::assemble(w);
    BlockGraph graph = BlockGraph::build(obj);
    graph.computeStaticCycles(desc);
    const std::vector<OracleBlock> oracle = oracleBlocks(obj);

    ASSERT_EQ(graph.blocks().size(), oracle.size());
    uint64_t graph_sum = 0;
    uint64_t oracle_sum = 0;
    for (size_t i = 0; i < oracle.size(); ++i) {
      const Block& b = graph.blocks()[i];
      EXPECT_EQ(b.addr, oracle[i].addr);
      ASSERT_EQ(b.count, oracle[i].instrs.size());
      for (size_t k = 0; k < oracle[i].instrs.size(); ++k) {
        EXPECT_EQ(graph.begin(b)[k].addr, oracle[i].instrs[k].addr);
        EXPECT_EQ(graph.begin(b)[k].opc, oracle[i].instrs[k].opc);
      }
      EXPECT_EQ(b.static_cycles, oracleStaticCycles(desc, oracle[i].instrs));
      graph_sum += b.static_cycles;
      oracle_sum += oracleStaticCycles(desc, oracle[i].instrs);
    }
    EXPECT_EQ(graph_sum, oracle_sum);
  }
}

TEST(BlockGraph, TranslatorSourceBlocksComeFromTheGraph) {
  for (const workloads::Workload& w : workloads::all()) {
    SCOPED_TRACE(w.name);
    const elf::Object obj = workloads::assemble(w);
    const BlockGraph graph = BlockGraph::build(obj);
    const std::vector<xlat::SourceBlock> sb = xlat::buildBlocks(obj);
    ASSERT_EQ(sb.size(), graph.blocks().size());
    for (size_t i = 0; i < sb.size(); ++i) {
      EXPECT_EQ(sb[i].addr, graph.blocks()[i].addr);
      EXPECT_EQ(sb[i].instrs.size(), graph.blocks()[i].count);
    }
  }
}

TEST(BlockGraph, SuccessorEdges) {
  const elf::Object obj = trc::assemble(R"(
_start: movi d0, 3
loop:   addi16 d0, -1
        jnz16 d0, loop
        j done
        nop             ; unreachable, its own block
done:   jl fn
        halt
fn:     ret16
)");
  const BlockGraph graph = BlockGraph::build(obj);
  // Blocks: _start | loop..jnz16 | j done | nop | done: jl | halt | fn.
  ASSERT_EQ(graph.blocks().size(), 7u);
  const std::vector<Block>& b = graph.blocks();
  EXPECT_EQ(b[0].fall_through, 1);  // straight into the loop
  EXPECT_EQ(b[0].target, -1);
  EXPECT_EQ(b[1].target, 1);        // back edge
  EXPECT_EQ(b[1].fall_through, 2);
  EXPECT_EQ(b[2].target, 4);        // j done
  EXPECT_EQ(b[2].fall_through, -1);
  EXPECT_EQ(b[4].target, 6);        // call fn
  EXPECT_EQ(b[4].fall_through, -1);
  EXPECT_EQ(b[6].target, -1);       // indirect return: dynamic
  EXPECT_EQ(b[6].fall_through, -1);
  EXPECT_EQ(graph.indexAt(b[4].addr), 4);
  EXPECT_EQ(graph.blockAt(0xdeadbeef), nullptr);
}

TEST(BlockGraph, LeaderBitmapMatchesLeaderSet) {
  for (const workloads::Workload& w : workloads::all()) {
    SCOPED_TRACE(w.name);
    const elf::Object obj = workloads::assemble(w);
    const BlockGraph graph = BlockGraph::build(obj);
    // Every 2-byte slot of .text answers exactly like the ordered set;
    // addresses outside .text answer false.
    const uint32_t first = graph.instrs().front().addr;
    const trc::Instr& last = graph.instrs().back();
    for (uint32_t a = first; a < last.addr + last.size; a += 2) {
      EXPECT_EQ(graph.isLeaderFast(a), graph.leaders().count(a) != 0)
          << hex32(a);
    }
    EXPECT_FALSE(graph.isLeaderFast(first - 2));
    EXPECT_FALSE(graph.isLeaderFast(last.addr + last.size));
    EXPECT_FALSE(graph.isLeaderFast(0));
    EXPECT_FALSE(graph.isLeaderFast(0xffffffffu));
  }
}

TEST(BlockGraph, BlockIndexContaining) {
  const elf::Object obj = trc::assemble(R"(
_start: movi d0, 3
loop:   addi16 d0, -1
        add d1, d1, d0
        jnz16 d0, loop
        halt
)");
  const BlockGraph graph = BlockGraph::build(obj);
  ASSERT_EQ(graph.blocks().size(), 3u);
  for (size_t i = 0; i < graph.blocks().size(); ++i) {
    const Block& b = graph.blocks()[i];
    // Every instruction address of a block maps back to its index.
    for (const trc::Instr* in = graph.begin(b); in != graph.end(b); ++in) {
      EXPECT_EQ(graph.blockIndexContaining(in->addr),
                static_cast<int32_t>(i));
    }
  }
  EXPECT_EQ(graph.blockIndexContaining(0), -1);
  EXPECT_EQ(graph.blockIndexContaining(0xdeadbeef), -1);
}

TEST(Traces, FormsDominantChainWithFlattenedSchedules) {
  const elf::Object obj = trc::assemble(R"(
_start: movi d0, 100
loop:   add d1, d1, d0
        addi16 d0, -1
        jnz16 d0, loop
        halt
)");
  const arch::ArchDescription desc = defaultArch();
  const BlockGraph graph = BlockGraph::build(obj);
  BlockCache cache(makeArtifact(desc, obj));
  // Blocks: _start | loop | halt. Seed the loop's observed outcomes so
  // the backedge dominates 4:1.
  const int32_t loop_idx = graph.indexAt(graph.blocks()[1].addr);
  ASSERT_EQ(loop_idx, 1);
  cache.blocks()[1].taken_count = 99;
  cache.blocks()[1].ft_count = 1;
  TraceOptions opts;
  opts.max_blocks = 4;
  const int32_t t = cache.formTrace(1, opts);
  ASSERT_GE(t, 0);
  const Trace& tr = cache.traces()[static_cast<size_t>(t)];
  // The hot loop unrolls into max_blocks copies of itself, guarded by
  // its own entry address at every internal boundary.
  ASSERT_EQ(tr.segs.size(), 4u);
  const ExecBlock& loop = cache.blocks()[1];
  EXPECT_EQ(tr.addr, loop.addr());
  EXPECT_EQ(tr.total_instrs, 4 * loop.instrs().size());
  for (size_t s = 0; s < tr.segs.size(); ++s) {
    const TraceSegment& seg = tr.segs[s];
    EXPECT_EQ(seg.block, 1);
    EXPECT_EQ(seg.entry_addr, loop.addr());
    ASSERT_EQ(seg.count, loop.instrs().size());
    // Flattened arrays are the block's predecoded data, per segment.
    for (uint32_t i = 0; i < seg.count; ++i) {
      EXPECT_EQ(tr.instrs[seg.first + i].addr, loop.instrs()[i].addr);
      EXPECT_EQ(tr.cum_cycles[seg.first + i], loop.cum_cycles()[i]);
      if (!loop.new_line().empty()) {
        EXPECT_EQ(tr.new_line[seg.first + i], loop.new_line()[i]);
        EXPECT_EQ(tr.line_set[seg.first + i], loop.line_set()[i]);
        EXPECT_EQ(tr.line_tag[seg.first + i], loop.line_tag()[i]);
      }
    }
  }
}

TEST(Traces, DeclinesAmbiguousAndSingleBlockChains) {
  const elf::Object obj = trc::assemble(R"(
_start: movi d0, 100
loop:   add d1, d1, d0
        addi16 d0, -1
        jnz16 d0, loop
        halt
)");
  const BlockGraph graph = BlockGraph::build(obj);
  {
    // Balanced outcomes: no dominant successor, nothing to splice.
    BlockCache cache(makeArtifact(defaultArch(), obj));
    cache.blocks()[1].taken_count = 50;
    cache.blocks()[1].ft_count = 50;
    EXPECT_EQ(cache.formTrace(1, TraceOptions{}), kTraceDeclined);
  }
  {
    // A breakpointed successor terminates the chain: from the halt
    // block (no successor at all) the trace is a single block and is
    // declined outright.
    BlockCache cache(makeArtifact(defaultArch(), obj));
    EXPECT_EQ(cache.formTrace(2, TraceOptions{}), kTraceDeclined);
    // The dominant successor exists but carries a breakpoint flag.
    cache.blocks()[1].taken_count = 100;
    cache.blocks()[1].has_breakpoint = 1;
    EXPECT_EQ(cache.formTrace(1, TraceOptions{}), kTraceDeclined);
  }
}

TEST(BlockCache, LineGroupsMatchCacheAnalysisBlocks) {
  const arch::ArchDescription desc = defaultArch();
  for (const workloads::Workload& w : workloads::all()) {
    SCOPED_TRACE(w.name);
    const elf::Object obj = workloads::assemble(w);
    const BlockGraph graph = BlockGraph::build(obj);
    const BlockCache cache(makeArtifact(desc, obj));
    std::vector<xlat::SourceBlock> sb = xlat::buildBlocks(graph);
    xlat::computeCacheAnalysisBlocks(desc.icache, sb);
    ASSERT_EQ(cache.blocks().size(), sb.size());
    for (size_t i = 0; i < sb.size(); ++i) {
      const ExecBlock& eb = cache.blocks()[i];
      std::vector<size_t> starts;
      for (size_t k = 0; k < eb.new_line().size(); ++k) {
        if (eb.new_line()[k] != 0) {
          starts.push_back(k);
        }
      }
      EXPECT_EQ(starts, sb[i].cab_starts);
    }
  }
}

TEST(BlockCache, CumulativeCyclesEndAtStaticSchedule) {
  const arch::ArchDescription desc = defaultArch();
  for (const workloads::Workload& w : workloads::all()) {
    const elf::Object obj = workloads::assemble(w);
    BlockGraph graph = BlockGraph::build(obj);
    graph.computeStaticCycles(desc);
    const BlockCache cache(makeArtifact(desc, obj));
    for (size_t i = 0; i < cache.blocks().size(); ++i) {
      const ExecBlock& eb = cache.blocks()[i];
      const Block& b = graph.blocks()[i];
      ASSERT_FALSE(eb.cum_cycles().empty());
      // static_cycles = schedule + static branch extra >= schedule.
      const uint32_t schedule = eb.cum_cycles().back();
      EXPECT_LE(schedule, b.static_cycles);
      const trc::Instr& last = graph.last(b);
      const uint32_t extra =
          last.isControlTransfer() &&
                  last.cls() != arch::OpClass::kBranchCond
              ? desc.branch.unconditionalExtra(last.cls())
              : 0;
      EXPECT_EQ(schedule + extra, b.static_cycles);
      // The cumulative schedule is monotone.
      for (size_t k = 1; k < eb.cum_cycles().size(); ++k) {
        EXPECT_LE(eb.cum_cycles()[k - 1], eb.cum_cycles()[k]);
      }
    }
  }
}

TEST(BlockCache, HotCountsTrackExecution) {
  const elf::Object obj = trc::assemble(R"(
_start: movi d0, 25
loop:   addi16 d0, -1
        jnz16 d0, loop
        halt
)");
  iss::Iss iss(defaultArch(), obj);
  EXPECT_EQ(iss.run(), iss::StopReason::kHalted);
  const std::vector<iss::HotBlock> hot = iss.hotBlocks(2);
  ASSERT_GE(hot.size(), 1u);
  // The loop body dominates: dispatched 25 times.
  EXPECT_EQ(hot[0].exec_count, 25u);
  EXPECT_EQ(hot[0].instr_count, 2u);
  EXPECT_EQ(iss.stats().cached_blocks, iss.stats().blocks);
}

// ---- engine equivalence on targeted corner cases -------------------------

iss::IssStats runStats(const elf::Object& obj, bool block_cache,
                       bool timing = true) {
  iss::IssConfig cfg;
  cfg.use_block_cache = block_cache;
  cfg.model_timing = timing;
  iss::Iss iss(defaultArch(), obj, nullptr, cfg);
  iss.run();
  return iss.stats();
}

void expectSameStats(const iss::IssStats& a, const iss::IssStats& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.pipeline_cycles, b.pipeline_cycles);
  EXPECT_EQ(a.branch_extra, b.branch_extra);
  EXPECT_EQ(a.cache_penalty, b.cache_penalty);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.icache_accesses, b.icache_accesses);
  EXPECT_EQ(a.icache_misses, b.icache_misses);
  EXPECT_EQ(a.cond_branches, b.cond_branches);
  EXPECT_EQ(a.cond_taken, b.cond_taken);
  EXPECT_EQ(a.mispredicts, b.mispredicts);
}

TEST(EngineEquivalence, IndirectJumpIntoTheMiddleOfABlock) {
  // `target` is not a leader (it only follows a plain movi), so the
  // indirect jump lands mid-block and the block engine must fall back to
  // stepping with a warm pipeline, exactly like per-instruction mode.
  const elf::Object obj = trc::assemble(R"(
_start: movha a1, hi(target)
        lea a1, a1, lo(target)
        ji a1
        movi d9, 111
target: movi d9, 222
        add d8, d9, d9
        halt
)");
  expectSameStats(runStats(obj, true), runStats(obj, false));
}

TEST(EngineEquivalence, HaltInTheMiddleOfABlock) {
  // The halt is not preceded by a control transfer, so its block
  // continues past it; execution must stop with a partial block commit.
  const elf::Object obj = trc::assemble(R"(
_start: movi d1, 1
        movi d2, 2
        halt
        movi d3, 3
        add d4, d1, d2
)");
  expectSameStats(runStats(obj, true), runStats(obj, false));
}

TEST(EngineEquivalence, InstructionLimitStopsInsideABlock) {
  const elf::Object obj = trc::assemble(R"(
_start: movi d0, 1000
loop:   addi16 d0, -1
        add d1, d1, d0
        sub d2, d1, d0
        jnz16 d0, loop
        halt
)");
  for (const uint64_t limit : {1ull, 2ull, 3ull, 7ull, 50ull}) {
    SCOPED_TRACE(limit);
    iss::IssConfig fast_cfg;
    fast_cfg.max_instructions = limit;
    iss::IssConfig slow_cfg = fast_cfg;
    slow_cfg.use_block_cache = false;
    iss::Iss fast(defaultArch(), obj, nullptr, fast_cfg);
    iss::Iss slow(defaultArch(), obj, nullptr, slow_cfg);
    EXPECT_EQ(fast.run(), iss::StopReason::kMaxInstructions);
    EXPECT_EQ(slow.run(), iss::StopReason::kMaxInstructions);
    expectSameStats(fast.stats(), slow.stats());
    EXPECT_EQ(fast.pc(), slow.pc());
  }
}

TEST(EngineEquivalence, FunctionalModeMatches) {
  const elf::Object obj = trc::assemble(R"(
_start: movi d0, 12
loop:   addi16 d0, -1
        jnz16 d0, loop
        halt
)");
  const iss::IssStats fast = runStats(obj, true, /*timing=*/false);
  const iss::IssStats slow = runStats(obj, false, /*timing=*/false);
  expectSameStats(fast, slow);
  EXPECT_EQ(fast.cycles, 0u);
  EXPECT_EQ(fast.blocks, 0u);
}

}  // namespace
}  // namespace cabt::core
