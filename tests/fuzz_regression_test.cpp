// Replays the checked-in fuzz findings forever, and proves the farm
// still earns its keep (DESIGN.md section 13).
//
// Two suites:
//   * Seeds: every tests/fuzz_seeds/*.seed is a self-contained
//     regression case. All of them must replay clean against today's
//     engines; the minimized skew finding must additionally go red the
//     moment the planted translator bug (debug_skew_static_cycles) is
//     re-armed — red under the bug, green without it, forever.
//   * Farm: the acceptance drill. Run the farm over a scratch copy of
//     the checked-in bootstrap corpus (the farm writes into its corpus
//     directory — never point it at the source tree) with the planted
//     bug armed and a CI-sized budget: it must find the bug, minimize
//     the finding, and the minimized seed must replay red-with-bug /
//     green-clean.
//
// Paths resolve through CABT_SOURCE_DIR (a compile definition), so the
// test runs from any build directory.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/farm.h"
#include "fuzz/oracle.h"
#include "obs/metrics.h"

namespace cabt {
namespace {

namespace fs = std::filesystem;

#ifndef CABT_SOURCE_DIR
#error "fuzz_regression_test needs -DCABT_SOURCE_DIR=\"...\""
#endif

fs::path sourceDir() { return fs::path(CABT_SOURCE_DIR); }

std::vector<std::string> seedFiles(const fs::path& dir) {
  std::vector<std::string> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == ".seed") {
      out.push_back(e.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

fs::path freshTempDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(Seeds, CheckedInSeedsReplayClean) {
  const std::vector<std::string> seeds =
      seedFiles(sourceDir() / "tests" / "fuzz_seeds");
  ASSERT_FALSE(seeds.empty());
  for (const std::string& path : seeds) {
    SCOPED_TRACE(path);
    const fuzz::SeedCase c = fuzz::loadSeedFile(path);
    const fuzz::OracleResult r =
        fuzz::runOracle(c, fuzz::OracleOptions{}, nullptr, nullptr);
    EXPECT_TRUE(r.valid) << r.mismatch;
    EXPECT_TRUE(r.ok) << r.mismatch;
  }
}

TEST(Seeds, SkewFindingStaysRedUnderPlantedBug) {
  const fs::path path =
      sourceDir() / "tests" / "fuzz_seeds" / "skew-finding-0.seed";
  ASSERT_TRUE(fs::exists(path)) << path;
  const fuzz::SeedCase c = fuzz::loadSeedFile(path.string());
  fuzz::OracleOptions skew;
  skew.xlat_skew = true;
  const fuzz::OracleResult bad =
      fuzz::runOracle(c, skew, nullptr, nullptr);
  EXPECT_TRUE(bad.valid) << bad.mismatch;
  EXPECT_FALSE(bad.ok) << "planted translator bug went undetected";
  const fuzz::OracleResult good =
      fuzz::runOracle(c, fuzz::OracleOptions{}, nullptr, nullptr);
  EXPECT_TRUE(good.valid) << good.mismatch;
  EXPECT_TRUE(good.ok) << good.mismatch;
}

/// Scratch copy of the checked-in corpus (the farm mutates its corpus
/// directory in place).
fs::path copyCorpus(const std::string& name) {
  const fs::path dst = freshTempDir(name);
  const fs::path src = sourceDir() / "tests" / "fuzz_corpus";
  for (const fs::directory_entry& e : fs::directory_iterator(src)) {
    if (e.is_regular_file() && e.path().extension() == ".seed") {
      fs::copy_file(e.path(), dst / e.path().filename());
    }
  }
  return dst;
}

TEST(Farm, FindsMinimizesAndReplaysPlantedSkew) {
  const fs::path corpus = copyCorpus("fuzz_reg_corpus");
  const fs::path findings = freshTempDir("fuzz_reg_findings");
  fuzz::FarmConfig cfg;
  cfg.corpus_dir = corpus.string();
  cfg.findings_dir = findings.string();
  cfg.seed = 1;
  cfg.max_findings = 1;
  cfg.max_candidates = 64;    // the drill fires during admission;
  cfg.max_millis = 120'000;   // budgets are backstops, not the plan
  cfg.minimize_budget = 40;
  cfg.oracle.xlat_skew = true;
  fuzz::Farm farm(cfg);
  const fuzz::FarmStats stats = farm.run();
  ASSERT_GE(stats.findings, 1u);
  ASSERT_FALSE(stats.finding_paths.empty());
  ASSERT_FALSE(stats.finding_mismatches.empty());
  EXPECT_NE(stats.finding_mismatches[0].find("translated platform"),
            std::string::npos)
      << stats.finding_mismatches[0];

  // The minimized finding replays: red with the bug, green without.
  const fuzz::SeedCase minimized =
      fuzz::loadSeedFile(stats.finding_paths[0]);
  fuzz::OracleOptions skew;
  skew.xlat_skew = true;
  const fuzz::OracleResult bad =
      fuzz::runOracle(minimized, skew, nullptr, nullptr);
  EXPECT_TRUE(bad.valid) << bad.mismatch;
  EXPECT_FALSE(bad.ok);
  const fuzz::OracleResult good =
      fuzz::runOracle(minimized, fuzz::OracleOptions{}, nullptr, nullptr);
  EXPECT_TRUE(good.valid) << good.mismatch;
  EXPECT_TRUE(good.ok) << good.mismatch;

  // fuzz.* metrics publish from the campaign.
  obs::MetricsRegistry reg;
  farm.publishMetrics(reg);
  EXPECT_EQ(reg.counterOr("fuzz.findings"), stats.findings);
  EXPECT_GT(reg.counterOr("fuzz.oracle_execs"), 0u);
}

TEST(Farm, CleanCampaignFindsNothingAndGrowsCoverage) {
  const fs::path corpus = copyCorpus("fuzz_reg_clean_corpus");
  fuzz::FarmConfig cfg;
  cfg.corpus_dir = corpus.string();
  cfg.seed = 3;
  cfg.max_candidates = 6;   // a short sniff, not a campaign
  cfg.max_millis = 120'000;
  fuzz::Farm farm(cfg);
  const fuzz::FarmStats stats = farm.run();
  EXPECT_EQ(stats.findings, 0u);
  EXPECT_GT(stats.coverage_bits, 0u);
  EXPECT_GT(stats.oracle_execs, 0u);
  EXPECT_EQ(stats.candidates, 6u);
}

}  // namespace
}  // namespace cabt
