// Emulation-platform tests: synchronization handshake, bus bridge
// behaviour, state comparison helpers, and architecture-description
// variants driven through the whole translate-and-run flow (the paper's
// retargetability claim: the translator adapts to the processor via the
// description, not via code changes).
#include <gtest/gtest.h>

#include "iss/iss.h"
#include "platform/platform.h"
#include "trc/assembler.h"
#include "workloads/workloads.h"
#include "xlat/translator.h"

namespace cabt::platform {
namespace {

arch::ArchDescription defaultArch() {
  return arch::ArchDescription::defaultTc10gp();
}

TEST(Platform, SyncWaitStallsUntilGenerationDone) {
  // At a slow generation rate the block executes faster than its cycles
  // are generated: the wait instruction must stall.
  const elf::Object obj = trc::assemble(R"(
_start: movi d1, 1
        movi d2, 2
        movi d3, 3
        halt
)");
  const arch::ArchDescription desc = defaultArch();
  xlat::TranslateOptions opts;
  opts.level = xlat::DetailLevel::kStatic;
  const xlat::TranslationResult t = xlat::translate(desc, obj, opts);

  PlatformConfig fast;
  fast.vliw_cycles_per_soc_cycle = 1;
  EmulationPlatform p1(desc, t.image, fast);
  const RunResult r1 = p1.run();

  PlatformConfig slow;
  slow.vliw_cycles_per_soc_cycle = 8;
  EmulationPlatform p2(desc, t.image, slow);
  const RunResult r2 = p2.run();

  EXPECT_EQ(r1.generated_cycles, r2.generated_cycles);
  EXPECT_GT(r2.sync_stall_cycles, r1.sync_stall_cycles);
  EXPECT_GT(r2.vliw_cycles, r1.vliw_cycles);
}

TEST(Platform, PeripheralsSeeOnlyGeneratedCycles) {
  // The timer is clocked by the synchronization device: at the functional
  // level nothing generates cycles, so the timer never advances.
  const elf::Object obj = trc::assemble(R"(
_start: movha a0, 0xf000
        movi d0, 20
loop:   addi16 d0, -1
        jnz16 d0, loop
        ldw d1, [a0]0x100
        halt
)");
  const arch::ArchDescription desc = [] {
    arch::ArchDescription d = defaultArch();
    d.icache.enabled = false;
    return d;
  }();
  for (const xlat::DetailLevel level :
       {xlat::DetailLevel::kFunctional, xlat::DetailLevel::kBranchPredict}) {
    xlat::TranslateOptions opts;
    opts.level = level;
    const xlat::TranslationResult t = xlat::translate(desc, obj, opts);
    EmulationPlatform plat(desc, t.image);
    EXPECT_EQ(plat.run().state, vliw::RunState::kHalted);
    if (level == xlat::DetailLevel::kFunctional) {
      EXPECT_EQ(plat.srcD(1), 0u);  // timer frozen without cycle generation
    } else {
      EXPECT_GT(plat.srcD(1), 0u);
      EXPECT_LE(plat.srcD(1), plat.sync().totalGenerated());
    }
  }
}

TEST(Platform, BridgeTransactionsLandWithinGeneratedTime) {
  const elf::Object obj = trc::assemble(R"(
_start: movha a0, 0xf000
        movi d1, 65
        stw d1, [a0]0x200
        movi d1, 66
        stw d1, [a0]0x200
        halt
)");
  const arch::ArchDescription desc = defaultArch();
  xlat::TranslateOptions opts;
  opts.level = xlat::DetailLevel::kICache;
  const xlat::TranslationResult t = xlat::translate(desc, obj, opts);
  EmulationPlatform plat(desc, t.image);
  EXPECT_EQ(plat.run().state, vliw::RunState::kHalted);
  EXPECT_EQ(plat.board().chardev.output(), "AB");
  // Every transaction timestamp lies within the generated cycle stream.
  for (const soc::Transaction& tr : plat.board().bus.log()) {
    EXPECT_LE(tr.soc_cycle, plat.sync().totalGenerated());
  }
  // The probe property: the peripheral clock equals the generated count.
  EXPECT_EQ(plat.board().timer.count(), plat.sync().totalGenerated());
}

TEST(Platform, ValuesMatchIsRemapAware) {
  const arch::ArchDescription desc = defaultArch();
  EXPECT_TRUE(valuesMatch(desc, 42, 42));
  // 0xd0000010 remaps to 0x00800010.
  EXPECT_TRUE(valuesMatch(desc, 0xd0000010, 0x00800010));
  EXPECT_FALSE(valuesMatch(desc, 0xd0000010, 0x00800014));
  EXPECT_FALSE(valuesMatch(desc, 41, 42));
}

TEST(Platform, CompareFinalStateFindsDifferences) {
  const elf::Object obj = trc::assemble(R"(
_start: movi d5, 7
        halt
)");
  const arch::ArchDescription desc = defaultArch();
  iss::Iss ref(desc, obj);
  EXPECT_EQ(ref.run(), iss::StopReason::kHalted);
  const xlat::TranslationResult t = xlat::translate(desc, obj, {});
  EmulationPlatform plat(desc, t.image);
  EXPECT_EQ(plat.run().state, vliw::RunState::kHalted);
  EXPECT_EQ(compareFinalState(desc, ref, plat, obj), "");
  // Perturb one register: the comparison reports it.
  plat.sim().setReg(xlat::srcD(5), 8);
  EXPECT_NE(compareFinalState(desc, ref, plat, obj).find("d5"),
            std::string::npos);
}

// ---- architecture variants (retargetability via the description) --------

struct ArchVariant {
  const char* name;
  const char* xml;
};

class ArchVariants : public ::testing::TestWithParam<ArchVariant> {};

TEST_P(ArchVariants, TranslationTracksTheDescription) {
  // The same workload, translated for differently-described source
  // processors, must reproduce each description's cycle count exactly at
  // the icache level (or branch-predict level when the cache is off).
  const arch::ArchDescription desc = arch::parseArchXml(GetParam().xml);
  const elf::Object obj =
      workloads::assemble(workloads::get("gcd"));

  iss::Iss ref(desc, obj);
  ASSERT_EQ(ref.run(), iss::StopReason::kHalted);

  xlat::TranslateOptions opts;
  opts.level = desc.icache.enabled ? xlat::DetailLevel::kICache
                                   : xlat::DetailLevel::kBranchPredict;
  const xlat::TranslationResult t = xlat::translate(desc, obj, opts);
  EmulationPlatform plat(desc, t.image);
  const RunResult run = plat.run();
  ASSERT_EQ(run.state, vliw::RunState::kHalted);
  EXPECT_EQ(run.generated_cycles, ref.stats().cycles);
  EXPECT_EQ(compareFinalState(desc, ref, plat, obj), "");
}

const ArchVariant kVariants[] = {
    {"single_issue", R"(
<processor name="single-issue" clock_hz="48000000">
  <pipeline dual_issue="0"/>
  <icache enabled="1" sets="16" ways="2" line_bytes="16" miss_penalty="4"/>
  <memorymap>
    <region name="flash" base="0x80000000" size="0x00100000" kind="rom"/>
    <region name="ram" base="0xd0000000" size="0x00100000" kind="ram"
            remap="0x00800000"/>
    <region name="io" base="0xf0000000" size="0x00010000" kind="io"/>
  </memorymap>
</processor>)"},
    {"slow_multiplier", R"(
<processor name="slow-mul" clock_hz="48000000">
  <pipeline dual_issue="1">
    <latency class="mul" cycles="6"/>
    <latency class="load" cycles="3"/>
  </pipeline>
  <branch taken_predicted_extra="2" mispredict_extra="4" indirect_extra="5"/>
  <icache enabled="0"/>
  <memorymap>
    <region name="flash" base="0x80000000" size="0x00100000" kind="rom"/>
    <region name="ram" base="0xd0000000" size="0x00100000" kind="ram"/>
    <region name="io" base="0xf0000000" size="0x00010000" kind="io"/>
  </memorymap>
</processor>)"},
    {"tiny_cache_big_penalty", R"(
<processor name="tiny-cache" clock_hz="48000000">
  <pipeline dual_issue="1"/>
  <icache enabled="1" sets="2" ways="2" line_bytes="32" miss_penalty="17"/>
  <memorymap>
    <region name="flash" base="0x80000000" size="0x00100000" kind="rom"/>
    <region name="ram" base="0xd0000000" size="0x00100000" kind="ram"
            remap="0x00800000"/>
    <region name="io" base="0xf0000000" size="0x00010000" kind="io"/>
  </memorymap>
</processor>)"},
    {"identity_ram_mapping", R"(
<processor name="identity" clock_hz="48000000">
  <pipeline dual_issue="1"/>
  <icache enabled="1" sets="64" ways="2" line_bytes="16" miss_penalty="8"/>
  <memorymap>
    <region name="flash" base="0x80000000" size="0x00100000" kind="rom"/>
    <region name="ram" base="0xd0000000" size="0x00100000" kind="ram"/>
    <region name="io" base="0xf0000000" size="0x00010000" kind="io"/>
  </memorymap>
</processor>)"},
};

INSTANTIATE_TEST_SUITE_P(Descriptions, ArchVariants,
                         ::testing::ValuesIn(kVariants),
                         [](const ::testing::TestParamInfo<ArchVariant>& i) {
                           return i.param.name;
                         });

}  // namespace
}  // namespace cabt::platform
