// SoC bus, peripheral and synchronization-device tests.
#include <gtest/gtest.h>

#include "common/error.h"
#include "soc/bus.h"
#include "soc/peripherals.h"
#include "soc/standard_board.h"
#include "soc/sync_device.h"

namespace cabt::soc {
namespace {

TEST(SocBus, RoutesToAttachedDevices) {
  SocBus bus;
  ScratchDevice scratch;
  bus.attach(&scratch, 0xf0000300, 0x40);
  EXPECT_TRUE(bus.covers(0xf0000300));
  EXPECT_TRUE(bus.covers(0xf000033c));
  EXPECT_FALSE(bus.covers(0xf0000340));
  bus.write(0xf0000304, 77, 4);
  EXPECT_EQ(bus.read(0xf0000304, 4), 77u);
  EXPECT_EQ(scratch.reg(1), 77u);
}

TEST(SocBus, UnmappedAccessThrows) {
  SocBus bus;
  EXPECT_THROW(bus.read(0x1000, 4), Error);
  EXPECT_THROW(bus.write(0x1000, 0, 4), Error);
}

TEST(SocBus, RejectsOverlappingWindows) {
  SocBus bus;
  ScratchDevice a;
  ScratchDevice b;
  bus.attach(&a, 0x100, 0x40);
  EXPECT_THROW(bus.attach(&b, 0x13c, 0x40), Error);
}

TEST(SocBus, LogsTransactionsWithCycleStamps) {
  SocBus bus;
  ScratchDevice scratch;
  bus.attach(&scratch, 0x0, 0x40);
  bus.clockCycle();
  bus.clockCycle();
  bus.write(0x0, 5, 4);
  bus.clockCycle();
  bus.read(0x0, 4);
  ASSERT_EQ(bus.log().size(), 2u);
  EXPECT_EQ(bus.log()[0].soc_cycle, 2u);
  EXPECT_TRUE(bus.log()[0].is_write);
  EXPECT_EQ(bus.log()[1].soc_cycle, 3u);
  EXPECT_FALSE(bus.log()[1].is_write);
}

TEST(SocBus, LogLimitKeepsMostRecentTransactions) {
  SocBus bus;
  ScratchDevice scratch;
  bus.attach(&scratch, 0x0, 0x40);
  bus.setLogLimit(4);
  for (uint32_t i = 0; i < 100; ++i) {
    bus.clockCycle();
    bus.write(0x0, i, 4);
  }
  // The cap bounds memory (below 2x the limit) while always retaining at
  // least the most recent `limit` entries, newest last.
  ASSERT_GE(bus.log().size(), 4u);
  ASSERT_LT(bus.log().size(), 8u);
  EXPECT_EQ(bus.droppedTransactions() + bus.log().size(), 100u);
  EXPECT_EQ(bus.log().back().value, 99u);
  const size_t n = bus.log().size();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(bus.log()[i].value, 100 - n + i);
  }
  // Tightening the cap trims immediately; clearing resets the counter.
  bus.setLogLimit(2);
  EXPECT_EQ(bus.log().size(), 2u);
  EXPECT_EQ(bus.log().back().value, 99u);
  bus.clearLog();
  EXPECT_EQ(bus.droppedTransactions(), 0u);
  EXPECT_TRUE(bus.log().empty());
}

TEST(SocBus, UnlimitedLogIsTheDefault) {
  SocBus bus;
  ScratchDevice scratch;
  bus.attach(&scratch, 0x0, 0x40);
  for (uint32_t i = 0; i < 1000; ++i) {
    bus.write(0x0, i, 4);
  }
  EXPECT_EQ(bus.log().size(), 1000u);
  EXPECT_EQ(bus.droppedTransactions(), 0u);
}

TEST(Timer, CountsOnlyClockedCycles) {
  SocBus bus;
  TimerDevice timer;
  bus.attach(&timer, 0x0, 0x10);
  EXPECT_EQ(bus.read(0x0, 4), 0u);
  for (int i = 0; i < 5; ++i) {
    bus.clockCycle();
  }
  EXPECT_EQ(bus.read(0x0, 4), 5u);
  bus.write(0x8, 0, 4);  // reset
  EXPECT_EQ(bus.read(0x0, 4), 0u);
}

TEST(CharDev, CollectsOutputWithStamps) {
  SocBus bus;
  CharDevice chardev;
  bus.attach(&chardev, 0x0, 0x10);
  bus.clockCycle();
  bus.write(0x0, 'h', 4);
  bus.clockCycle();
  bus.write(0x0, 'i', 4);
  EXPECT_EQ(chardev.output(), "hi");
  EXPECT_EQ(chardev.stamps(), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(bus.read(0x4, 4), 2u);
}

TEST(SyncDevice, GeneratesExactlyRequestedCycles) {
  SocBus bus;
  TimerDevice timer;
  bus.attach(&timer, 0x0, 0x10);
  SyncDevice sync(&bus, /*rate=*/1);
  sync.start(5);
  EXPECT_TRUE(sync.busy());
  unsigned emitted = 0;
  for (int i = 0; i < 10; ++i) {
    emitted += sync.tickVliwCycle() ? 1 : 0;
  }
  EXPECT_EQ(emitted, 5u);
  EXPECT_FALSE(sync.busy());
  EXPECT_EQ(sync.totalGenerated(), 5u);
  EXPECT_EQ(timer.count(), 5u);  // the attached hardware saw every cycle
}

TEST(SyncDevice, RateDividesVliwClock) {
  SocBus bus;
  SyncDevice sync(&bus, /*rate=*/4);
  sync.start(2);
  unsigned ticks = 0;
  while (sync.busy()) {
    sync.tickVliwCycle();
    ++ticks;
  }
  EXPECT_EQ(ticks, 8u);  // 2 SoC cycles at 4 VLIW cycles each
}

TEST(SyncDevice, CorrectionAccumulates) {
  SocBus bus;
  SyncDevice sync(&bus, 1);
  sync.start(3);
  sync.correct(2);
  unsigned emitted = 0;
  while (sync.busy()) {
    emitted += sync.tickVliwCycle() ? 1 : 0;
  }
  EXPECT_EQ(emitted, 5u);
  EXPECT_EQ(sync.correctionTotal(), 2u);
  EXPECT_EQ(sync.numStarts(), 1u);
  EXPECT_EQ(sync.numCorrections(), 1u);
}

TEST(SyncDevice, IdleTicksEmitNothing) {
  SocBus bus;
  SyncDevice sync(&bus, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(sync.tickVliwCycle());
  }
  EXPECT_EQ(sync.totalGenerated(), 0u);
  EXPECT_EQ(bus.socCycle(), 0u);
}

TEST(StandardBoard, AttachesPeripheralsAtStandardOffsets) {
  StandardPeripherals board(0xf0000000);
  board.bus.write(0xf0000200, 'x', 4);
  EXPECT_EQ(board.chardev.output(), "x");
  board.bus.clockCycle();
  EXPECT_EQ(board.bus.read(0xf0000100, 4), 1u);  // timer
  board.bus.write(0xf0000300, 9, 4);
  EXPECT_EQ(board.scratch.reg(0), 9u);
}

}  // namespace
}  // namespace cabt::soc
