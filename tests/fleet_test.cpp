// Differential tests for the board-fleet driver (src/fleet, DESIGN.md
// section 14).
//
// The claims under test mirror the parallel-kernel grid one level up:
// (1) scheduling M boards over host threads is bit-identical to running
// the same M boards one after another — same snap digests and the same
// per-board bus transaction logs; (2) the whole fleet shares one
// program artifact per distinct image (one decode, M-1 cache hits),
// even under batch activation; (3) snapshot-forked fleets start
// bit-identical to the warm prototype and only diverge where the
// scenario hook diverges them.
#include <gtest/gtest.h>

#include <vector>

#include "core/program_artifact.h"
#include "fleet/fleet.h"
#include "platform/platform.h"
#include "snap/snapshot.h"
#include "soc/bus.h"
#include "workloads/workloads.h"

namespace cabt {
namespace {

struct Grid {
  std::vector<const workloads::Workload*> programs;
  std::vector<elf::Object> images;
  std::vector<const elf::Object*> image_ptrs;
  std::vector<uint32_t> extra_leaders;
};

/// Same board family as the parallel grid: the interrupt-driven tick
/// counter (1 core) or the producer/consumer pair plus workers.
Grid makeGrid(size_t cores) {
  Grid g;
  if (cores == 1) {
    g.programs = {&workloads::get("irq_ticks")};
  } else {
    g.programs = {&workloads::get("mc_producer"),
                  &workloads::get("mc_consumer")};
    while (g.programs.size() < cores) {
      g.programs.push_back(&workloads::get("mc_worker"));
    }
  }
  for (const workloads::Workload* w : g.programs) {
    g.images.push_back(workloads::assemble(*w));
    if (!w->irq_handler.empty()) {
      g.extra_leaders.push_back(
          platform::symbolAddr(g.images.back(), w->irq_handler));
    }
  }
  for (const elf::Object& obj : g.images) {
    g.image_ptrs.push_back(&obj);
  }
  return g;
}

platform::BoardConfig boardConfig(const Grid& grid) {
  platform::BoardConfig cfg;
  cfg.iss = platform::issConfigFor(xlat::DetailLevel::kICache);
  cfg.iss.extra_leaders = grid.extra_leaders;
  cfg.iss.max_instructions = 30'000;
  cfg.quantum = 256;
  return cfg;
}

fleet::FleetConfig fleetConfig(const Grid& grid, size_t boards) {
  fleet::FleetConfig cfg;
  cfg.desc = arch::ArchDescription::defaultTc10gp();
  cfg.board = boardConfig(grid);
  cfg.boards = boards;
  cfg.host_threads = 4;  // force real cross-thread scheduling
  return cfg;
}

/// What the inspect hook captures per board for the differential.
struct Observed {
  uint64_t digest = 0;
  std::vector<uint32_t> checksums;
  std::vector<soc::Transaction> bus_log;
};

Observed observe(const Grid& grid, platform::ReferenceBoard& board) {
  Observed o;
  o.digest = snap::digest(board);
  for (size_t i = 0; i < board.numCores(); ++i) {
    o.checksums.push_back(
        workloads::readChecksum(grid.images[i], board.core(i).memory()));
  }
  o.bus_log = board.board().bus.log();
  return o;
}

void expectIdentical(const Observed& a, const Observed& b) {
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.checksums, b.checksums);
  ASSERT_EQ(a.bus_log.size(), b.bus_log.size());
  for (size_t i = 0; i < a.bus_log.size(); ++i) {
    EXPECT_EQ(a.bus_log[i].soc_cycle, b.bus_log[i].soc_cycle)
        << "transaction " << i;
    EXPECT_EQ(a.bus_log[i].addr, b.bus_log[i].addr) << "transaction " << i;
    EXPECT_EQ(a.bus_log[i].value, b.bus_log[i].value) << "transaction " << i;
    EXPECT_EQ(a.bus_log[i].size, b.bus_log[i].size) << "transaction " << i;
    EXPECT_EQ(a.bus_log[i].is_write, b.bus_log[i].is_write)
        << "transaction " << i;
  }
}

// M identical multi-core boards scheduled concurrently over the fleet
// driver are bit-identical — digests, memory checksums and the full bus
// transaction log — to the same M boards run sequentially, one by one,
// without the driver.
TEST(Fleet, ConcurrentBoardsMatchSequentialRuns) {
  const Grid grid = makeGrid(2);
  constexpr size_t kBoards = 4;

  std::vector<Observed> fleet_obs(kBoards);
  fleet::FleetConfig cfg = fleetConfig(grid, kBoards);
  cfg.inspect = [&grid, &fleet_obs](size_t i, platform::ReferenceBoard& b) {
    fleet_obs[i] = observe(grid, b);
  };
  fleet::Driver driver(cfg);
  const fleet::FleetResult result = driver.run(grid.image_ptrs);

  ASSERT_EQ(result.boards.size(), kBoards);
  EXPECT_TRUE(result.digestsAgree());
  EXPECT_GT(result.totalInstructions(), 0u);

  std::vector<Observed> seq_obs;
  for (size_t i = 0; i < kBoards; ++i) {
    platform::ReferenceBoard board(cfg.desc, grid.image_ptrs,
                                   boardConfig(grid));
    board.run();
    seq_obs.push_back(observe(grid, board));
  }

  for (size_t i = 0; i < kBoards; ++i) {
    SCOPED_TRACE("board " + std::to_string(i));
    EXPECT_EQ(result.boards[i].digest, fleet_obs[i].digest);
    expectIdentical(fleet_obs[i], seq_obs[i]);
  }
}

// Batch activation bounds how many boards are live at once, yet the
// whole fleet still pays exactly one decode per distinct image: the
// driver pins the shared artifacts for the duration of the run, so a
// wave boundary cannot expire them.
TEST(Fleet, BatchedFleetDecodesEachImageOnce) {
  const Grid grid = makeGrid(1);
  constexpr size_t kBoards = 6;

  core::ProgramArtifactCache::instance().clear();
  fleet::FleetConfig cfg = fleetConfig(grid, kBoards);
  cfg.batch = 2;  // three activation waves
  fleet::Driver driver(cfg);
  const fleet::FleetResult result = driver.run(grid.image_ptrs);

  EXPECT_TRUE(result.digestsAgree());
  EXPECT_EQ(result.artifact.decodes, 1u);
  // The pin plus every board's core resolve to the same live artifact.
  EXPECT_GE(result.artifact.hits, kBoards);
}

// Snapshot-forked fleet, no divergence hook: every fork resumes from
// the warm prototype's state and finishes bit-identical to a board that
// simply ran the whole way through.
TEST(Fleet, UndivergedForksMatchStraightRun) {
  const Grid grid = makeGrid(1);
  constexpr size_t kForks = 3;

  platform::ReferenceBoard straight(arch::ArchDescription::defaultTc10gp(),
                                    grid.image_ptrs, boardConfig(grid));
  straight.run();
  const uint64_t straight_digest = snap::digest(straight);

  fleet::Driver driver(fleetConfig(grid, kForks));
  const fleet::FleetResult result =
      driver.runForked(grid.image_ptrs, 512, nullptr);

  ASSERT_EQ(result.boards.size(), kForks);
  for (size_t i = 0; i < kForks; ++i) {
    EXPECT_EQ(result.boards[i].digest, straight_digest)
        << "fork " << i << " diverged from the straight run";
  }
}

// With a divergence hook, each fork becomes a distinct scenario: the
// per-fork state poke lands in the digest, so all forks differ from the
// undiverged run and from each other, deterministically run-to-run.
TEST(Fleet, DivergedForksDifferDeterministically) {
  const Grid grid = makeGrid(1);
  constexpr size_t kForks = 3;
  constexpr sim::Cycle kWarm = 512;

  const auto diverge = [](size_t index, platform::ReferenceBoard& board) {
    // A nonzero poke into an otherwise untouched page: architectural
    // state, so it must show up in the digest.
    board.core(0).memory().write(
        0x000F'F000u, 0xD1000000u + static_cast<uint32_t>(index + 1), 4);
  };

  fleet::Driver driver(fleetConfig(grid, kForks));
  const fleet::FleetResult first =
      driver.runForked(grid.image_ptrs, kWarm, diverge);
  const fleet::FleetResult second =
      driver.runForked(grid.image_ptrs, kWarm, diverge);
  const fleet::FleetResult baseline =
      driver.runForked(grid.image_ptrs, kWarm, nullptr);

  ASSERT_EQ(first.boards.size(), kForks);
  for (size_t i = 0; i < kForks; ++i) {
    EXPECT_NE(first.boards[i].digest, baseline.boards[i].digest)
        << "fork " << i << " ignored the divergence hook";
    EXPECT_EQ(first.boards[i].digest, second.boards[i].digest)
        << "fork " << i << " is not reproducible";
    for (size_t j = i + 1; j < kForks; ++j) {
      EXPECT_NE(first.boards[i].digest, first.boards[j].digest)
          << "forks " << i << " and " << j << " collided";
    }
  }
}

// The artifact cache itself: same image + config shares, different
// config (extra leaders) decodes separately, and clear() forgets.
TEST(Fleet, ArtifactCacheHitAndMissAccounting) {
  const Grid grid = makeGrid(1);
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  auto& cache = core::ProgramArtifactCache::instance();
  cache.clear();

  const auto a1 = cache.acquire(desc, grid.images[0], grid.extra_leaders);
  EXPECT_EQ(cache.stats().decodes, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  const auto a2 = cache.acquire(desc, grid.images[0], grid.extra_leaders);
  EXPECT_EQ(a1.get(), a2.get());
  EXPECT_EQ(cache.stats().decodes, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // A different leader set is a different lowering — distinct artifact.
  std::vector<uint32_t> other_leaders = grid.extra_leaders;
  other_leaders.push_back(grid.images[0].entry);
  const auto a3 = cache.acquire(desc, grid.images[0], other_leaders);
  EXPECT_NE(a1.get(), a3.get());
  EXPECT_EQ(cache.stats().decodes, 2u);

  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().decodes, 0u);
}

// Fleet metrics land in the registry under the fleet.* namespace, with
// the exemplar board folded under fleet.board0.* via merge().
TEST(Fleet, PublishesMetrics) {
  const Grid grid = makeGrid(1);
  fleet::Driver driver(fleetConfig(grid, 2));
  const fleet::FleetResult result = driver.run(grid.image_ptrs);

  obs::MetricsRegistry reg;
  result.publishMetrics(reg);
  EXPECT_EQ(reg.counterOr("fleet.boards"), 2u);
  EXPECT_GT(reg.counterOr("fleet.instructions"), 0u);
  EXPECT_GT(reg.gaugeOr("fleet.boards_per_sec"), 0.0);
  EXPECT_GT(reg.gaugeOr("fleet.aggregate_mips"), 0.0);
  const obs::Histogram* h = reg.histogram("fleet.board_instructions");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  // The exemplar board's own counters surfaced under board0.
  EXPECT_GT(reg.counterOr("fleet.board0.core0.iss.instructions"), 0u);
}

}  // namespace
}  // namespace cabt
