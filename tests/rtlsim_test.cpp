// RT-level model tests: the cycle-driven pipeline state machine must
// agree exactly with the reference ISS (same architecture description,
// independently implemented timing), while recording waveform events.
#include <gtest/gtest.h>

#include "iss/iss.h"
#include "rtlsim/rtlsim.h"
#include "trc/assembler.h"
#include "workloads/workloads.h"

namespace cabt::rtlsim {
namespace {

arch::ArchDescription defaultArch() {
  return arch::ArchDescription::defaultTc10gp();
}

void expectAgreement(const elf::Object& obj,
                     const arch::ArchDescription& desc) {
  iss::Iss ref(desc, obj);
  ASSERT_EQ(ref.run(), iss::StopReason::kHalted);

  RtlCore rtl(desc, obj);
  rtl.run();
  EXPECT_EQ(rtl.stats().cycles, ref.stats().cycles);
  EXPECT_EQ(rtl.stats().instructions, ref.stats().instructions);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rtl.d(i), ref.d(i)) << "d" << i;
    EXPECT_EQ(rtl.a(i), ref.a(i)) << "a" << i;
  }
  EXPECT_TRUE(rtl.memory().contentEquals(ref.memory()));
  EXPECT_GT(rtl.stats().signal_events, rtl.stats().cycles);
}

TEST(RtlCore, StraightLineAgreesWithIss) {
  expectAgreement(trc::assemble(R"(
_start: movi d1, 3
        movha a0, 0xd000
        ldw d2, [a0]0
        add d3, d2, d1
        mul d4, d3, d3
        stw d4, [a0]4
        halt
)"), defaultArch());
}

TEST(RtlCore, LoopsAndBranchPenalties) {
  expectAgreement(trc::assemble(R"(
_start: movi d0, 25
        movi d1, 0
loop:   add d1, d1, d0
        addi16 d0, -1
        jnz16 d0, loop
        halt
)"), defaultArch());
}

TEST(RtlCore, CallsAndIndirectJumps) {
  expectAgreement(trc::assemble(R"(
_start: movi d0, 5
        jl f
        jl f
        halt
f:      add d0, d0, d0
        ret16
)"), defaultArch());
}

TEST(RtlCore, ICacheDisabled) {
  arch::ArchDescription desc = defaultArch();
  desc.icache.enabled = false;
  expectAgreement(trc::assemble(R"(
_start: movi d0, 10
loop:   addi16 d0, -1
        jnz16 d0, loop
        halt
)"), desc);
}

TEST(RtlCore, NoDualIssueVariant) {
  arch::ArchDescription desc = defaultArch();
  desc.pipeline.dual_issue = false;
  expectAgreement(trc::assemble(R"(
_start: movi d1, 4
        movha a0, 0xd000
        lea a0, a0, 8
        stw d1, [a0]0
        halt
)"), desc);
}

class RtlWorkloads : public ::testing::TestWithParam<const char*> {};

TEST_P(RtlWorkloads, AgreesWithIssOnWorkload) {
  const workloads::Workload& w = workloads::get(GetParam());
  expectAgreement(workloads::assemble(w), defaultArch());
}

INSTANTIATE_TEST_SUITE_P(All, RtlWorkloads,
                         ::testing::Values("gcd", "dpcm", "fir", "ellip",
                                           "sieve", "subband", "fibonacci"));

TEST(RtlCore, TraceBufferRecordsEvents) {
  TraceBuffer buf(16);
  for (int i = 0; i < 100; ++i) {
    buf.record(i, 1, i);
  }
  EXPECT_EQ(buf.events(), 100u);  // wraps, still counts
}

}  // namespace
}  // namespace cabt::rtlsim
