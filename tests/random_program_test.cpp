// Differential property tests over randomly generated TRC32 programs.
//
// A seeded generator produces structured random programs (straight-line
// arithmetic, bounded loops, memory traffic, calls, mixed 16/32-bit
// encodings). Each program is executed on:
//   * the reference ISS (ground truth),
//   * the RT-level model (must agree cycle-for-cycle), and
//   * the emulation platform after translation at every detail level
//     (functional equivalence always; exact generated cycle count at the
//     icache level; exact-minus-cache-penalty at branch-predict level).
// This is the central end-to-end invariant of the reproduction, checked
// over a wide program space rather than just the hand-written workloads.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>

#include "fuzz/program_gen.h"
#include "iss/iss.h"
#include "platform/platform.h"
#include "rtlsim/rtlsim.h"
#include "snap/snapshot.h"
#include "trc/assembler.h"
#include "xlat/translator.h"

namespace cabt {
namespace {

// The generator lives in src/fuzz/program_gen.h (one definition, shared
// with the fuzzing farm); these tests consume it as a library.
using fuzz::GeneratorConfig;
using fuzz::ProgramGenerator;

/// Base offset added to every suite parameter (1..60), read from the
/// CABT_TEST_SEED environment variable (default 0). Every failure prints
/// its exact seed; reproduce a reported seed S in a single-test run with
///   CABT_TEST_SEED=$((S-1)) ./random_program_test
///       --gtest_filter='*AllVehiclesAgree/0'
/// (test index 0 is parameter value 1, so it runs seed (S-1)+1 = S).
uint32_t seedBase() {
  const char* env = std::getenv("CABT_TEST_SEED");
  return env != nullptr
             ? static_cast<uint32_t>(std::strtoul(env, nullptr, 0))
             : 0;
}

class RandomPrograms : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RandomPrograms, AllVehiclesAgree) {
  const uint32_t seed = seedBase() + GetParam();
  SCOPED_TRACE("seed: " + std::to_string(seed) + " (CABT_TEST_SEED base " +
               std::to_string(seedBase()) + " + param " +
               std::to_string(GetParam()) + ")");
  ProgramGenerator gen(GeneratorConfig{seed, /*shared_traffic=*/false});
  // Full generator config, so the failure log line alone reproduces the
  // program: one core, every detail level and dispatch engine below.
  SCOPED_TRACE("generator: cores=1 " + fuzz::describe(gen.config()) +
               " detail=all dispatch=all");
  const std::string source = gen.generate();
  SCOPED_TRACE("program:\n" + source);

  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const elf::Object obj = trc::assemble(source);

  iss::Iss ref(desc, obj);
  ref.enableBlockTrace(true);
  ASSERT_EQ(ref.run(), iss::StopReason::kHalted);

  // Every dispatch engine must match the reference (the run() default:
  // chained + traces) instruction-for-instruction and cycle-for-cycle:
  // identical stats, registers and per-block timing records. The
  // stepping engine is the ground truth; the lookup and chained-only
  // block engines, and a low-threshold trace engine (superblocks form
  // after two dispatches, so every loop exercises guarded traces), all
  // have to agree bit-exactly.
  const auto compareEngines = [&](iss::IssConfig cfg, const char* label,
                                  bool expect_cached) {
    SCOPED_TRACE(label);
    iss::Iss other(desc, obj, nullptr, cfg);
    other.enableBlockTrace(true);
    ASSERT_EQ(other.run(), iss::StopReason::kHalted);
    EXPECT_EQ(other.stats().instructions, ref.stats().instructions);
    EXPECT_EQ(other.stats().cycles, ref.stats().cycles);
    EXPECT_EQ(other.stats().pipeline_cycles, ref.stats().pipeline_cycles);
    EXPECT_EQ(other.stats().branch_extra, ref.stats().branch_extra);
    EXPECT_EQ(other.stats().cache_penalty, ref.stats().cache_penalty);
    EXPECT_EQ(other.stats().blocks, ref.stats().blocks);
    EXPECT_EQ(other.stats().icache_accesses, ref.stats().icache_accesses);
    EXPECT_EQ(other.stats().icache_misses, ref.stats().icache_misses);
    EXPECT_EQ(other.stats().cond_branches, ref.stats().cond_branches);
    EXPECT_EQ(other.stats().cond_taken, ref.stats().cond_taken);
    EXPECT_EQ(other.stats().mispredicts, ref.stats().mispredicts);
    EXPECT_EQ(other.pc(), ref.pc());
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(other.d(i), ref.d(i)) << "d" << i;
      EXPECT_EQ(other.a(i), ref.a(i)) << "a" << i;
    }
    ASSERT_EQ(other.blockTrace().size(), ref.blockTrace().size());
    for (size_t i = 0; i < other.blockTrace().size(); ++i) {
      const iss::BlockRecord& s = other.blockTrace()[i];
      const iss::BlockRecord& f = ref.blockTrace()[i];
      EXPECT_EQ(s.addr, f.addr) << "block " << i;
      EXPECT_EQ(s.pipeline_cycles, f.pipeline_cycles) << "block " << i;
      EXPECT_EQ(s.branch_extra, f.branch_extra) << "block " << i;
      EXPECT_EQ(s.cache_penalty, f.cache_penalty) << "block " << i;
    }
    if (expect_cached) {
      // Every block of a leader-entered program runs from the cache.
      EXPECT_EQ(other.stats().cached_blocks, other.stats().blocks);
    } else {
      EXPECT_EQ(other.stats().cached_blocks, 0u);
    }
  };
  EXPECT_EQ(ref.stats().cached_blocks, ref.stats().blocks);
  {
    iss::IssConfig cfg;
    cfg.use_block_cache = false;
    compareEngines(cfg, "stepping", false);
  }
  {
    iss::IssConfig cfg;
    cfg.dispatch_mode = iss::DispatchMode::kLookup;
    compareEngines(cfg, "lookup", true);
  }
  {
    iss::IssConfig cfg;
    cfg.dispatch_mode = iss::DispatchMode::kChained;
    compareEngines(cfg, "chained", true);
  }
  {
    iss::IssConfig cfg;
    cfg.dispatch_mode = iss::DispatchMode::kChainedTraces;
    cfg.trace_threshold = 2;
    compareEngines(cfg, "traces(threshold=2)", true);
  }
  {
    // Low thresholds so even short random programs lower both hot
    // blocks and formed traces into threaded-code programs.
    iss::IssConfig cfg;
    cfg.dispatch_mode = iss::DispatchMode::kThreaded;
    cfg.trace_threshold = 2;
    cfg.threaded_threshold = 2;
    compareEngines(cfg, "threaded(threshold=2)", true);
  }

  // RT-level model: exact cycle agreement.
  rtlsim::RtlCore rtl(desc, obj);
  rtl.run();
  EXPECT_EQ(rtl.stats().cycles, ref.stats().cycles);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rtl.d(i), ref.d(i)) << "d" << i;
  }

  // Translation at every level.
  for (const xlat::DetailLevel level :
       {xlat::DetailLevel::kFunctional, xlat::DetailLevel::kStatic,
        xlat::DetailLevel::kBranchPredict, xlat::DetailLevel::kICache}) {
    SCOPED_TRACE(xlat::detailLevelName(level));
    xlat::TranslateOptions opts;
    opts.level = level;
    const xlat::TranslationResult t = xlat::translate(desc, obj, opts);
    platform::EmulationPlatform plat(desc, t.image);
    const platform::RunResult run = plat.run();
    ASSERT_EQ(run.state, vliw::RunState::kHalted);
    EXPECT_EQ(platform::compareFinalState(desc, ref, plat, obj), "");
    if (level == xlat::DetailLevel::kICache) {
      EXPECT_EQ(run.generated_cycles, ref.stats().cycles);
    }
    if (level == xlat::DetailLevel::kBranchPredict) {
      EXPECT_EQ(run.generated_cycles + ref.stats().cache_penalty,
                ref.stats().cycles);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<uint32_t>(1, 61));

TEST(RandomPrograms, GeneratorIsDeterministic) {
  EXPECT_EQ(ProgramGenerator(7).generate(), ProgramGenerator(7).generate());
  EXPECT_NE(ProgramGenerator(7).generate(), ProgramGenerator(8).generate());
}

// ---- multi-core randomized scenario ---------------------------------
//
// Three cores run three different random programs (private compute plus
// random shared-mailbox/scratch chatter) on one reference board, under
// the sequential kernel and under parallel rounds. Everything observable
// must agree bit-exactly: registers, cycles, and the shared bus's full
// transaction log (order, payloads and SoC-cycle stamps).

class MultiCoreRandomPrograms : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MultiCoreRandomPrograms, ParallelKernelBitIdentical) {
  const uint32_t seed = seedBase() + GetParam();
  SCOPED_TRACE("seed: " + std::to_string(seed) + " (CABT_TEST_SEED base " +
               std::to_string(seedBase()) + " + param " +
               std::to_string(GetParam()) + ")");
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  std::vector<elf::Object> images;
  std::vector<const elf::Object*> ptrs;
  std::string gen_desc = "generator: cores=3 detail=icache";
  for (uint32_t core = 0; core < 3; ++core) {
    ProgramGenerator gen(
        GeneratorConfig{seed + 1000 * core, /*shared_traffic=*/true});
    gen_desc += " core" + std::to_string(core) + "=[" +
                fuzz::describe(gen.config()) + "]";
    images.push_back(trc::assemble(gen.generate()));
  }
  SCOPED_TRACE(gen_desc);
  for (const elf::Object& obj : images) {
    ptrs.push_back(&obj);
  }

  for (const sim::Cycle quantum : {16u, 512u}) {
    SCOPED_TRACE("quantum " + std::to_string(quantum));
    struct Run {
      std::vector<iss::IssStats> stats;
      std::vector<std::array<uint32_t, 32>> regs;
      std::vector<uint32_t> pc;
      std::vector<soc::Transaction> log;
      uint64_t bus_cycle = 0;
      uint64_t events = 0;
    };
    const auto runOnce = [&](bool parallel) {
      platform::BoardConfig cfg;
      cfg.quantum = quantum;
      cfg.parallel.enabled = parallel;
      cfg.parallel.workers = 2;  // real threads even on 1-core hosts
      platform::ReferenceBoard board(desc, ptrs, cfg);
      const iss::StopReason r = board.run();
      EXPECT_EQ(r, iss::StopReason::kHalted);
      Run run;
      for (size_t i = 0; i < board.numCores(); ++i) {
        run.stats.push_back(board.core(i).stats());
        std::array<uint32_t, 32> regs{};
        for (int j = 0; j < 16; ++j) {
          regs[static_cast<size_t>(j)] = board.core(i).d(j);
          regs[static_cast<size_t>(j) + 16] = board.core(i).a(j);
        }
        run.regs.push_back(regs);
        run.pc.push_back(board.core(i).pc());
      }
      run.log = board.board().bus.log();
      run.bus_cycle = board.board().bus.socCycle();
      run.events = board.kernel().eventsDispatched();
      return run;
    };
    const Run seq = runOnce(false);
    const Run par = runOnce(true);
    ASSERT_EQ(par.stats.size(), seq.stats.size());
    for (size_t i = 0; i < seq.stats.size(); ++i) {
      SCOPED_TRACE("core " + std::to_string(i));
      EXPECT_EQ(par.stats[i].instructions, seq.stats[i].instructions);
      EXPECT_EQ(par.stats[i].cycles, seq.stats[i].cycles);
      EXPECT_EQ(par.stats[i].io_reads, seq.stats[i].io_reads);
      EXPECT_EQ(par.stats[i].io_writes, seq.stats[i].io_writes);
      EXPECT_EQ(par.regs[i], seq.regs[i]);
      EXPECT_EQ(par.pc[i], seq.pc[i]);
    }
    EXPECT_EQ(par.bus_cycle, seq.bus_cycle);
    EXPECT_EQ(par.events, seq.events);
    ASSERT_EQ(par.log.size(), seq.log.size());
    for (size_t i = 0; i < seq.log.size(); ++i) {
      EXPECT_EQ(par.log[i].soc_cycle, seq.log[i].soc_cycle) << "txn " << i;
      EXPECT_EQ(par.log[i].addr, seq.log[i].addr) << "txn " << i;
      EXPECT_EQ(par.log[i].value, seq.log[i].value) << "txn " << i;
      EXPECT_EQ(par.log[i].is_write, seq.log[i].is_write) << "txn " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiCoreRandomPrograms,
                         ::testing::Range<uint32_t>(1, 13));

// ---- snapshot round-trip fuzz ---------------------------------------
//
// Random multi-core boards (private compute plus shared mailbox/scratch
// chatter), snapshotted at a random mid-run cycle and restored into a
// completely fresh platform. Every observable — per-core stats,
// registers, the full bus transaction log and the rolling state digest —
// must match an uninterrupted run bit-exactly. Odd seeds run under the
// parallel-round kernel, so the save point also lands between parallel
// rounds; the dispatch mode cycles with the seed, so cold restores land
// in every engine, including threaded-code programs re-lowered from a
// cache rebuilt after restore.

class SnapshotFuzz : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SnapshotFuzz, RandomCycleSaveRestoreBitIdentical) {
  const uint32_t seed = seedBase() + GetParam();
  SCOPED_TRACE("seed: " + std::to_string(seed) + " (CABT_TEST_SEED base " +
               std::to_string(seedBase()) + " + param " +
               std::to_string(GetParam()) + ")");
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  std::vector<elf::Object> images;
  std::vector<const elf::Object*> ptrs;
  std::string gen_desc = "generator: cores=3";
  for (uint32_t core = 0; core < 3; ++core) {
    ProgramGenerator gen(
        GeneratorConfig{seed + 1000 * core, /*shared_traffic=*/true});
    gen_desc += " core" + std::to_string(core) + "=[" +
                fuzz::describe(gen.config()) + "]";
    images.push_back(trc::assemble(gen.generate()));
  }
  SCOPED_TRACE(gen_desc);
  for (const elf::Object& obj : images) {
    ptrs.push_back(&obj);
  }
  const bool parallel = GetParam() % 2 == 1;
  static const iss::DispatchMode kModes[] = {
      iss::DispatchMode::kLookup, iss::DispatchMode::kChained,
      iss::DispatchMode::kChainedTraces, iss::DispatchMode::kThreaded};
  const iss::DispatchMode mode = kModes[GetParam() % 4];
  SCOPED_TRACE("config: parallel=" + std::to_string(parallel) +
               " dispatch_mode=" +
               std::to_string(static_cast<int>(mode)));
  const auto build = [&] {
    platform::BoardConfig cfg;
    cfg.quantum = 256;
    cfg.iss.dispatch_mode = mode;
    // Aggressive formation so short fuzz programs still exercise traces
    // and threaded lowering before the random save point.
    cfg.iss.trace_threshold = 2;
    cfg.iss.threaded_threshold = 2;
    cfg.parallel.enabled = parallel;
    cfg.parallel.workers = 2;
    return std::make_unique<platform::ReferenceBoard>(desc, ptrs, cfg);
  };

  struct Obs {
    std::vector<iss::IssStats> stats;
    std::vector<std::array<uint32_t, 32>> regs;
    std::vector<uint32_t> pc;
    std::vector<soc::Transaction> log;
    uint64_t bus_cycle = 0;
    uint64_t digest = 0;
  };
  const auto observe = [](platform::ReferenceBoard& board) {
    Obs o;
    for (size_t i = 0; i < board.numCores(); ++i) {
      o.stats.push_back(board.core(i).stats());
      std::array<uint32_t, 32> regs{};
      for (int j = 0; j < 16; ++j) {
        regs[static_cast<size_t>(j)] = board.core(i).d(j);
        regs[static_cast<size_t>(j) + 16] = board.core(i).a(j);
      }
      o.regs.push_back(regs);
      o.pc.push_back(board.core(i).pc());
    }
    o.log = board.board().bus.log();
    o.bus_cycle = board.board().bus.socCycle();
    o.digest = snap::digest(board);
    return o;
  };

  std::unique_ptr<platform::ReferenceBoard> ref = build();
  ASSERT_EQ(ref->run(), iss::StopReason::kHalted);
  const Obs want = observe(*ref);
  // A seed-derived random save point anywhere inside the run. Short
  // programs can retire within the first kernel activation (global time
  // never advances past 0); the bus clock still measures the run's
  // span, and a post-halt save degenerates to a (valid) halted-state
  // round trip.
  const sim::Cycle end = std::max<uint64_t>(want.bus_cycle, 1);
  std::mt19937 cut_rng(seed * 2654435761u);
  const sim::Cycle save_at = 1 + cut_rng() % end;
  SCOPED_TRACE("save at cycle " + std::to_string(save_at) + " of " +
               std::to_string(end));

  std::unique_ptr<platform::ReferenceBoard> saved = build();
  saved->runTo(save_at);
  const std::vector<uint8_t> snapshot = snap::save(*saved);

  std::unique_ptr<platform::ReferenceBoard> fresh = build();
  snap::restore(*fresh, snapshot);
  ASSERT_EQ(fresh->run(), iss::StopReason::kHalted);
  const Obs got = observe(*fresh);

  ASSERT_EQ(got.stats.size(), want.stats.size());
  for (size_t i = 0; i < want.stats.size(); ++i) {
    SCOPED_TRACE("core " + std::to_string(i));
    EXPECT_EQ(got.stats[i].instructions, want.stats[i].instructions);
    EXPECT_EQ(got.stats[i].cycles, want.stats[i].cycles);
    EXPECT_EQ(got.stats[i].io_reads, want.stats[i].io_reads);
    EXPECT_EQ(got.stats[i].io_writes, want.stats[i].io_writes);
    EXPECT_EQ(got.regs[i], want.regs[i]);
    EXPECT_EQ(got.pc[i], want.pc[i]);
  }
  EXPECT_EQ(got.bus_cycle, want.bus_cycle);
  EXPECT_EQ(got.digest, want.digest);
  ASSERT_EQ(got.log.size(), want.log.size());
  for (size_t i = 0; i < want.log.size(); ++i) {
    EXPECT_EQ(got.log[i].soc_cycle, want.log[i].soc_cycle) << "txn " << i;
    EXPECT_EQ(got.log[i].addr, want.log[i].addr) << "txn " << i;
    EXPECT_EQ(got.log[i].value, want.log[i].value) << "txn " << i;
    EXPECT_EQ(got.log[i].is_write, want.log[i].is_write) << "txn " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzz,
                         ::testing::Range<uint32_t>(1, 11));

}  // namespace
}  // namespace cabt
