// Differential conformance fleet for the checkpoint/restore subsystem
// (src/snap, DESIGN.md section 9).
//
// The claim under test: a snapshot is the *complete* observable state of
// the platform. For every detail level, every dispatch mode and both
// kernels (sequential and parallel rounds),
//
//   run-to-T, save, continue          (the saved board)
//   fresh board, restore, continue    (a cold process: no warm block
//                                      cache, no superblock traces)
//   halted board, restore, continue   (a warm process re-restored)
//
// all reach observables bit-identical to one uninterrupted run: cycles,
// registers, memory checksums, IRQ delivery timestamps, the full bus
// transaction log, device state and the rolling state digest. The cold
// path is the hard part — it proves the predecoded block caches and
// traces really are derived state that rebuilds to the same
// architectural behaviour.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/serial.h"
#include "platform/platform.h"
#include "snap/snapshot.h"
#include "soc/bus.h"
#include "workloads/workloads.h"

namespace cabt {
namespace {

struct GridBoard {
  std::vector<const workloads::Workload*> programs;
  std::vector<elf::Object> images;
  std::vector<const elf::Object*> image_ptrs;
  std::vector<uint32_t> extra_leaders;
};

GridBoard makeBoard(const std::vector<std::string>& names) {
  GridBoard b;
  for (const std::string& name : names) {
    b.programs.push_back(&workloads::get(name));
  }
  for (const workloads::Workload* w : b.programs) {
    b.images.push_back(workloads::assemble(*w));
    if (!w->irq_handler.empty()) {
      b.extra_leaders.push_back(
          platform::symbolAddr(b.images.back(), w->irq_handler));
    }
  }
  for (const elf::Object& obj : b.images) {
    b.image_ptrs.push_back(&obj);
  }
  return b;
}

struct RunConfig {
  xlat::DetailLevel level = xlat::DetailLevel::kICache;
  iss::DispatchMode mode = iss::DispatchMode::kChainedTraces;
  bool use_block_cache = true;
  bool parallel = false;
  sim::Cycle quantum = 1024;
};

std::unique_ptr<platform::ReferenceBoard> buildBoard(const GridBoard& grid,
                                                     const RunConfig& rc) {
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  platform::BoardConfig cfg;
  cfg.iss = platform::issConfigFor(rc.level);
  cfg.iss.dispatch_mode = rc.mode;
  cfg.iss.use_block_cache = rc.use_block_cache;
  cfg.iss.extra_leaders = grid.extra_leaders;
  cfg.quantum = rc.quantum;
  cfg.parallel.enabled = rc.parallel;
  cfg.parallel.workers = 2;  // real threads even on 1-core hosts
  return std::make_unique<platform::ReferenceBoard>(desc, grid.image_ptrs,
                                                    cfg);
}

/// Every observable the acceptance criteria name, plus the digest.
struct BoardObs {
  std::vector<iss::IssStats> stats;
  std::vector<iss::StopReason> stop;
  std::vector<uint32_t> pc;
  std::vector<std::array<uint32_t, 16>> d;
  std::vector<std::array<uint32_t, 16>> a;
  std::vector<uint32_t> checksum;
  std::vector<std::vector<uint64_t>> irq_times;
  std::vector<uint32_t> intc_pending;
  uint64_t bus_cycle = 0;
  uint64_t timer_expiries = 0;
  uint64_t mailbox_pushes = 0;
  uint64_t mailbox_dropped = 0;
  size_t mailbox_depth = 0;
  std::array<uint32_t, 16> scratch{};
  std::vector<soc::Transaction> bus_log;
  uint64_t kernel_events = 0;
  uint64_t digest = 0;
};

BoardObs capture(platform::ReferenceBoard& board, const GridBoard& grid) {
  BoardObs s;
  for (size_t i = 0; i < board.numCores(); ++i) {
    s.stats.push_back(board.core(i).stats());
    s.stop.push_back(board.core(i).stopReason());
    s.pc.push_back(board.core(i).pc());
    std::array<uint32_t, 16> d{};
    std::array<uint32_t, 16> a{};
    for (int r = 0; r < 16; ++r) {
      d[static_cast<size_t>(r)] = board.core(i).d(r);
      a[static_cast<size_t>(r)] = board.core(i).a(r);
    }
    s.d.push_back(d);
    s.a.push_back(a);
    s.checksum.push_back(
        workloads::readChecksum(grid.images[i], board.core(i).memory()));
    s.irq_times.push_back(board.intc(i).deliveryTimes());
    s.intc_pending.push_back(board.intc(i).pending());
  }
  s.bus_cycle = board.board().bus.socCycle();
  s.timer_expiries = board.ptimer().expiries();
  s.mailbox_pushes = board.mailbox().pushes();
  s.mailbox_dropped = board.mailbox().dropped();
  s.mailbox_depth = board.mailbox().depth();
  for (size_t r = 0; r < 16; ++r) {
    s.scratch[r] = board.board().scratch.reg(r);
  }
  s.bus_log = board.board().bus.log();
  s.kernel_events = board.kernel().eventsDispatched();
  s.digest = snap::digest(board);
  return s;
}

/// Architectural equality only: the dispatch-path counters (cached_
/// blocks, chain_hits, trace_*, guard_bails, private_*) legitimately
/// differ between a warm continuation and a cold restore.
void expectIdentical(const BoardObs& got, const BoardObs& want) {
  ASSERT_EQ(got.stats.size(), want.stats.size());
  for (size_t i = 0; i < got.stats.size(); ++i) {
    SCOPED_TRACE("core " + std::to_string(i));
    const iss::IssStats& g = got.stats[i];
    const iss::IssStats& w = want.stats[i];
    EXPECT_EQ(g.instructions, w.instructions);
    EXPECT_EQ(g.cycles, w.cycles);
    EXPECT_EQ(g.pipeline_cycles, w.pipeline_cycles);
    EXPECT_EQ(g.branch_extra, w.branch_extra);
    EXPECT_EQ(g.cache_penalty, w.cache_penalty);
    EXPECT_EQ(g.blocks, w.blocks);
    EXPECT_EQ(g.icache_accesses, w.icache_accesses);
    EXPECT_EQ(g.icache_misses, w.icache_misses);
    EXPECT_EQ(g.cond_branches, w.cond_branches);
    EXPECT_EQ(g.cond_taken, w.cond_taken);
    EXPECT_EQ(g.mispredicts, w.mispredicts);
    EXPECT_EQ(g.io_reads, w.io_reads);
    EXPECT_EQ(g.io_writes, w.io_writes);
    EXPECT_EQ(g.irqs_taken, w.irqs_taken);
    EXPECT_EQ(g.irq_entry_cycles, w.irq_entry_cycles);
    EXPECT_EQ(got.stop[i], want.stop[i]);
    EXPECT_EQ(got.pc[i], want.pc[i]);
    EXPECT_EQ(got.d[i], want.d[i]);
    EXPECT_EQ(got.a[i], want.a[i]);
    EXPECT_EQ(got.checksum[i], want.checksum[i]);
    EXPECT_EQ(got.irq_times[i], want.irq_times[i])
        << "IRQ delivery timestamps";
    EXPECT_EQ(got.intc_pending[i], want.intc_pending[i]);
  }
  EXPECT_EQ(got.bus_cycle, want.bus_cycle);
  EXPECT_EQ(got.timer_expiries, want.timer_expiries);
  EXPECT_EQ(got.mailbox_pushes, want.mailbox_pushes);
  EXPECT_EQ(got.mailbox_dropped, want.mailbox_dropped);
  EXPECT_EQ(got.mailbox_depth, want.mailbox_depth);
  EXPECT_EQ(got.scratch, want.scratch);
  EXPECT_EQ(got.kernel_events, want.kernel_events);
  EXPECT_EQ(got.digest, want.digest) << "rolling state digest";
  ASSERT_EQ(got.bus_log.size(), want.bus_log.size());
  for (size_t i = 0; i < got.bus_log.size(); ++i) {
    const soc::Transaction& a = got.bus_log[i];
    const soc::Transaction& b = want.bus_log[i];
    EXPECT_EQ(a.soc_cycle, b.soc_cycle) << "transaction " << i;
    EXPECT_EQ(a.addr, b.addr) << "transaction " << i;
    EXPECT_EQ(a.value, b.value) << "transaction " << i;
    EXPECT_EQ(a.size, b.size) << "transaction " << i;
    EXPECT_EQ(a.is_write, b.is_write) << "transaction " << i;
  }
}

constexpr sim::Cycle kSaveAt = 1500;  // mid-run at every detail level

/// One configuration's full round trip: uninterrupted reference vs
/// (a) the saved board continuing after save (save has no side effects,
///     and a split kernel run is behaviour-neutral),
/// (b) a cold fresh board restored from the snapshot, and
/// (c) the halted saved board re-restored and re-run (a warm process
///     with stale block-cache statistics, re-winding time).
void roundTrip(const GridBoard& grid, const RunConfig& rc) {
  auto ref = buildBoard(grid, rc);
  ref->run();
  const BoardObs want = capture(*ref, grid);

  auto saved = buildBoard(grid, rc);
  saved->runTo(kSaveAt);
  const std::vector<uint8_t> snapshot = snap::save(*saved);
  saved->run();
  {
    SCOPED_TRACE("continue after save");
    expectIdentical(capture(*saved, grid), want);
  }

  auto cold = buildBoard(grid, rc);
  snap::restore(*cold, snapshot);
  cold->run();
  {
    SCOPED_TRACE("cold restore");
    expectIdentical(capture(*cold, grid), want);
  }

  snap::restore(*saved, snapshot);  // rewind the halted warm board
  saved->run();
  {
    SCOPED_TRACE("warm re-restore");
    expectIdentical(capture(*saved, grid), want);
  }
}

// ---- the differential grid -------------------------------------------

struct GridParam {
  iss::DispatchMode mode;
  bool parallel;
};

class SnapshotGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(SnapshotGrid, SaveRestoreRunIsBitIdentical) {
  const auto [mode, parallel] = GetParam();
  const GridBoard grid = makeBoard({"mc_producer", "mc_consumer"});
  for (const xlat::DetailLevel level :
       {xlat::DetailLevel::kFunctional, xlat::DetailLevel::kStatic,
        xlat::DetailLevel::kBranchPredict, xlat::DetailLevel::kICache}) {
    SCOPED_TRACE(xlat::detailLevelName(level));
    RunConfig rc;
    rc.level = level;
    rc.mode = mode;
    rc.parallel = parallel;
    roundTrip(grid, rc);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SnapshotGrid,
    ::testing::Values(GridParam{iss::DispatchMode::kLookup, false},
                      GridParam{iss::DispatchMode::kChained, false},
                      GridParam{iss::DispatchMode::kChainedTraces, false},
                      GridParam{iss::DispatchMode::kThreaded, false},
                      GridParam{iss::DispatchMode::kLookup, true},
                      GridParam{iss::DispatchMode::kChained, true},
                      GridParam{iss::DispatchMode::kChainedTraces, true},
                      GridParam{iss::DispatchMode::kThreaded, true}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      const char* mode =
          info.param.mode == iss::DispatchMode::kLookup ? "lookup"
          : info.param.mode == iss::DispatchMode::kChained ? "chained"
          : info.param.mode == iss::DispatchMode::kChainedTraces
              ? "traces"
              : "threaded";
      return std::string(mode) + (info.param.parallel ? "_par" : "_seq");
    });

// The stepping engine can carry an *open block* across a quantum yield
// (the commit is lazy, so the pipeline scoreboard and line tracking are
// live at the save point) — the snapshot must capture that residue.
TEST(SnapshotGrid, SteppingEngineSavesOpenBlockResidue) {
  const GridBoard grid = makeBoard({"mc_producer", "mc_consumer"});
  RunConfig rc;
  rc.use_block_cache = false;
  rc.mode = iss::DispatchMode::kLookup;
  for (const sim::Cycle quantum : {16u, 1024u}) {
    SCOPED_TRACE("quantum " + std::to_string(quantum));
    RunConfig q = rc;
    q.quantum = quantum;
    roundTrip(grid, q);
  }
}

// The single-core interrupt scenario: a snapshot taken between two of
// the eight timer deliveries must preserve the interrupt phase exactly
// (in-service flag, pending lines, timer next-expiry).
TEST(SnapshotGrid, InterruptPhaseSurvivesRestore) {
  const GridBoard grid = makeBoard({"irq_ticks"});
  for (const bool parallel : {false, true}) {
    SCOPED_TRACE(parallel ? "parallel" : "sequential");
    RunConfig rc;
    rc.parallel = parallel;
    roundTrip(grid, rc);
  }
}

// ---- deterministic replay --------------------------------------------

TEST(Replay, RunToIsChunkInvariant) {
  const GridBoard grid = makeBoard({"irq_ticks"});
  const RunConfig rc;
  auto whole = buildBoard(grid, rc);
  whole->run();
  const BoardObs want = capture(*whole, grid);

  auto chunked = buildBoard(grid, rc);
  chunked->runTo(700);
  chunked->runTo(1900);
  chunked->runTo(sim::kForever);
  expectIdentical(capture(*chunked, grid), want);
}

TEST(Replay, AutoSnapshotRingRetainsAndReplays) {
  const GridBoard grid = makeBoard({"irq_ticks"});
  const RunConfig rc;
  auto ref = buildBoard(grid, rc);
  ref->run();
  const BoardObs want = capture(*ref, grid);

  auto board = buildBoard(grid, rc);
  board->setCheckpointing({512, 2, ""});
  board->run();
  // Checkpointed execution is behaviour-neutral.
  expectIdentical(capture(*board, grid), want);
  // The ring dropped down to the 2 most recent snapshots while the
  // trail recorded every boundary, strictly increasing.
  EXPECT_EQ(board->checkpoints().size(), 2u);
  EXPECT_GT(board->digestTrail().size(), board->checkpoints().size());
  for (size_t i = 1; i < board->digestTrail().size(); ++i) {
    EXPECT_LT(board->digestTrail()[i - 1].first,
              board->digestTrail()[i].first);
  }
  // Fast-forward replay: restore the oldest retained snapshot into a
  // cold board and run to completion — same observables again.
  auto replay = buildBoard(grid, rc);
  snap::restore(*replay, board->checkpoints().front().data);
  replay->run();
  expectIdentical(capture(*replay, grid), want);
  // And the digest recorded at that checkpoint matches the restored
  // board's digest before it runs (restore is digest-preserving).
  auto replay2 = buildBoard(grid, rc);
  snap::restore(*replay2, board->checkpoints().back().data);
  EXPECT_EQ(snap::digest(*replay2), board->checkpoints().back().digest);
}

// The digest excludes host-side dispatch-path state by design: every
// engine — and the parallel kernel — produces the identical value.
TEST(Replay, DigestIsDispatchModeIndependent) {
  const GridBoard grid = makeBoard({"irq_ticks"});
  RunConfig base;
  auto ref = buildBoard(grid, base);
  ref->run();
  const uint64_t want = snap::digest(*ref);
  for (const iss::DispatchMode mode :
       {iss::DispatchMode::kLookup, iss::DispatchMode::kChained,
        iss::DispatchMode::kThreaded}) {
    RunConfig rc;
    rc.mode = mode;
    auto board = buildBoard(grid, rc);
    board->run();
    EXPECT_EQ(snap::digest(*board), want);
  }
  RunConfig stepping;
  stepping.use_block_cache = false;
  auto board = buildBoard(grid, stepping);
  board->run();
  EXPECT_EQ(snap::digest(*board), want);
  RunConfig par;
  par.parallel = true;
  auto pboard = buildBoard(grid, par);
  pboard->run();
  EXPECT_EQ(snap::digest(*pboard), want);
}

// ---- format safety ----------------------------------------------------

TEST(SnapshotFormat, RejectsCorruptionTruncationAndMismatch) {
  const GridBoard grid = makeBoard({"irq_ticks"});
  const RunConfig rc;
  auto board = buildBoard(grid, rc);
  board->runTo(kSaveAt);
  const std::vector<uint8_t> good = snap::save(*board);

  {  // bit flip in the middle fails the integrity footer
    std::vector<uint8_t> bad = good;
    bad[bad.size() / 2] ^= 0x40;
    auto target = buildBoard(grid, rc);
    EXPECT_THROW(snap::restore(*target, bad), Error);
  }
  {  // truncation
    std::vector<uint8_t> bad(good.begin(), good.end() - 9);
    auto target = buildBoard(grid, rc);
    EXPECT_THROW(snap::restore(*target, bad), Error);
  }
  {  // wrong board shape (core count)
    const GridBoard pair = makeBoard({"mc_producer", "mc_consumer"});
    auto target = buildBoard(pair, rc);
    EXPECT_THROW(snap::restore(*target, good), Error);
  }
  {  // wrong detail level (architectural config mismatch)
    RunConfig functional;
    functional.level = xlat::DetailLevel::kFunctional;
    auto target = buildBoard(grid, functional);
    EXPECT_THROW(snap::restore(*target, good), Error);
  }
  {  // wrong program image
    const GridBoard other = makeBoard({"mc_worker"});
    auto target = buildBoard(other, rc);
    EXPECT_THROW(snap::restore(*target, good), Error);
  }
  {  // the good snapshot still restores after all those rejections
    auto target = buildBoard(grid, rc);
    snap::restore(*target, good);
    target->run();
    auto ref = buildBoard(grid, rc);
    ref->run();
    EXPECT_EQ(snap::digest(*target), snap::digest(*ref));
  }
}

/// Recomputes the FNV footer over everything before it, so a mutation
/// survives the integrity check and has to be caught by the layer it
/// actually corrupts (version gate, shape gate, reader bounds).
void refootSnapshot(std::vector<uint8_t>& snap) {
  ASSERT_GT(snap.size(), 8u);
  const uint64_t sum = serial::fnv1a(snap.data(), snap.size() - 8);
  for (size_t i = 0; i < 8; ++i) {
    snap[snap.size() - 8 + i] = static_cast<uint8_t>(sum >> (8 * i));
  }
}

// Every corruption class the recovery path can meet in a ring entry,
// table-driven. Layout under attack: magic[8] | version u32 | cores u32
// | kernel section | bus section | per-core sections | FNV footer u64.
// Mutations that leave the footer stale are caught by the integrity
// check; mutations that *recompute* the footer must be caught by the
// specific gate they target — restore() must throw either way and the
// target board must remain usable.
TEST(SnapshotFormat, TableDrivenCorruptionIsAlwaysRejected) {
  const GridBoard grid = makeBoard({"irq_ticks"});
  const RunConfig rc;
  auto board = buildBoard(grid, rc);
  board->runTo(kSaveAt);
  const std::vector<uint8_t> good = snap::save(*board);
  ASSERT_GT(good.size(), 64u);

  using Mutate = std::function<void(std::vector<uint8_t>&)>;
  const std::vector<std::pair<std::string, Mutate>> kCases = {
      {"truncated mid-kernel-section",
       [](std::vector<uint8_t>& s) { s.resize(24); }},
      {"truncated mid-core-section",
       [](std::vector<uint8_t>& s) { s.resize(s.size() * 3 / 4); }},
      {"truncated mid-core-section, footer recomputed",  // reader bounds
       [](std::vector<uint8_t>& s) {
         s.resize(s.size() * 3 / 4);
         refootSnapshot(s);
       }},
      {"flipped magic byte", [](std::vector<uint8_t>& s) { s[0] ^= 0x20; }},
      {"flipped version byte", [](std::vector<uint8_t>& s) { s[8] ^= 0x01; }},
      {"wrong version, footer recomputed",  // version gate
       [](std::vector<uint8_t>& s) {
         s[8] ^= 0x01;
         refootSnapshot(s);
       }},
      {"wrong core count, footer recomputed",  // shape gate
       [](std::vector<uint8_t>& s) {
         s[12] ^= 0x01;
         refootSnapshot(s);
       }},
      {"flipped kernel-section byte",
       [](std::vector<uint8_t>& s) { s[20] ^= 0x40; }},
      {"flipped bus-section byte",
       [](std::vector<uint8_t>& s) { s[s.size() / 3] ^= 0x40; }},
      {"flipped core-section byte",
       [](std::vector<uint8_t>& s) { s[s.size() * 3 / 4] ^= 0x40; }},
      {"zeroed footer",
       [](std::vector<uint8_t>& s) {
         std::fill(s.end() - 8, s.end(), uint8_t{0});
       }},
      {"flipped footer byte",
       [](std::vector<uint8_t>& s) { s[s.size() - 3] ^= 0x04; }},
  };

  for (const auto& [name, mutate] : kCases) {
    SCOPED_TRACE(name);
    std::vector<uint8_t> bad = good;
    mutate(bad);
    auto target = buildBoard(grid, rc);
    EXPECT_THROW(snap::restore(*target, bad), Error);
    // A rejected restore may have partially consumed the image only
    // when the footer was valid; either way the board must still
    // accept the intact snapshot and replay to the clean end state.
    snap::restore(*target, good);
    target->run();
    auto ref = buildBoard(grid, rc);
    ref->run();
    EXPECT_EQ(snap::digest(*target), snap::digest(*ref));
  }
}

// Graceful degradation through the ring (DESIGN.md section 12): when
// the newest ring entries are corrupted in place, recover() walks past
// them to the newest intact one and deterministic replay from there
// converges on the clean run.
TEST(SnapshotFormat, RecoverFallsThroughCorruptRingEntries) {
  const GridBoard grid = makeBoard({"irq_ticks"});
  const RunConfig rc;
  auto ref = buildBoard(grid, rc);
  ref->run();
  const BoardObs want = capture(*ref, grid);

  auto board = buildBoard(grid, rc);
  board->setCheckpointing({512, 4, ""});
  // Corrupt every ring entry recorded after cycle 600 as it is pushed
  // (same mechanism fi::Campaign ring faults use).
  size_t corrupted = 0;
  board->setCheckpointHook([&corrupted](platform::Checkpoint& cp) {
    if (cp.cycle > 600) {
      cp.data[cp.data.size() / 2] ^= 0x40;
      ++corrupted;
    }
  });
  board->run();
  ASSERT_GE(board->checkpoints().size(), 2u);
  ASSERT_GE(corrupted, 1u);

  const platform::RecoveryReport rep = board->recover();
  ASSERT_TRUE(rep.recovered) << rep.detail;
  EXPECT_EQ(rep.entries_corrupt, corrupted);
  EXPECT_LE(rep.resume_cycle, 600u);
  board->run();
  expectIdentical(capture(*board, grid), want);
}

}  // namespace
}  // namespace cabt
