// Unit tests for the common utilities: bits, strings, XML parser,
// memory map, sparse memory.
#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/error.h"
#include "common/memmap.h"
#include "common/sparse_mem.h"
#include "common/strutil.h"
#include "common/xml.h"

namespace cabt {
namespace {

TEST(Bits, BitFieldExtractsRanges) {
  EXPECT_EQ(bitField(0xdeadbeef, 0, 8), 0xefu);
  EXPECT_EQ(bitField(0xdeadbeef, 8, 8), 0xbeu);
  EXPECT_EQ(bitField(0xdeadbeef, 28, 4), 0xdu);
  EXPECT_EQ(bitField(0xffffffff, 0, 32), 0xffffffffu);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(signExtend(0x7f, 8), 127);
  EXPECT_EQ(signExtend(0x80, 8), -128);
  EXPECT_EQ(signExtend(0xff, 8), -1);
  EXPECT_EQ(signExtend(0xffff, 16), -1);
  EXPECT_EQ(signExtend(0x8000, 16), -32768);
  EXPECT_EQ(signExtend(0x0, 16), 0);
}

TEST(Bits, FitsSignedAndUnsigned) {
  EXPECT_TRUE(fitsSigned(127, 8));
  EXPECT_FALSE(fitsSigned(128, 8));
  EXPECT_TRUE(fitsSigned(-128, 8));
  EXPECT_FALSE(fitsSigned(-129, 8));
  EXPECT_TRUE(fitsUnsigned(255, 8));
  EXPECT_FALSE(fitsUnsigned(256, 8));
}

TEST(Bits, InsertFieldRoundTrips) {
  uint32_t w = 0;
  w = insertField(w, 4, 8, 0xab);
  EXPECT_EQ(bitField(w, 4, 8), 0xabu);
  w = insertField(w, 4, 8, 0x12);
  EXPECT_EQ(bitField(w, 4, 8), 0x12u);
  EXPECT_EQ(bitField(w, 0, 4), 0u);
}

TEST(Bits, PowerOfTwoHelpers) {
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(64));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(48));
  EXPECT_EQ(log2Exact(64), 6u);
  EXPECT_EQ(alignUp(13, 8), 16u);
  EXPECT_EQ(alignUp(16, 8), 16u);
}

TEST(StrUtil, TrimAndSplit) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtil, SplitOperandsHonoursBrackets) {
  const auto ops = splitOperands("d1, [a0]8, d2");
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[1], "[a0]8");
}

TEST(StrUtil, ParseIntFormats) {
  EXPECT_EQ(parseInt("42"), 42);
  EXPECT_EQ(parseInt("-17"), -17);
  EXPECT_EQ(parseInt("0x10"), 16);
  EXPECT_EQ(parseInt("0b101"), 5);
  EXPECT_EQ(parseInt("0xffffffff"), 0xffffffffLL);
  EXPECT_THROW(parseInt("zz"), Error);
  EXPECT_THROW(parseInt(""), Error);
}

TEST(StrUtil, Identifier) {
  EXPECT_TRUE(isIdentifier("_start"));
  EXPECT_TRUE(isIdentifier("loop2"));
  EXPECT_FALSE(isIdentifier("2loop"));
  EXPECT_FALSE(isIdentifier(""));
  EXPECT_FALSE(isIdentifier("a b"));
}

TEST(Xml, ParsesElementsAttributesText) {
  const auto root = xml::parse(R"(<?xml version="1.0"?>
<!-- comment -->
<processor name="trc32" clock_hz="48000000">
  <pipeline dual_issue="1"/>
  <note>hello &amp; goodbye</note>
</processor>)");
  EXPECT_EQ(root->name(), "processor");
  EXPECT_EQ(root->attr("name"), "trc32");
  EXPECT_EQ(root->intAttr("clock_hz"), 48000000);
  ASSERT_NE(root->child("pipeline"), nullptr);
  EXPECT_EQ(root->child("pipeline")->intAttr("dual_issue"), 1);
  ASSERT_NE(root->child("note"), nullptr);
  EXPECT_NE(root->child("note")->text().find("hello & goodbye"),
            std::string::npos);
}

TEST(Xml, RejectsMalformedDocuments) {
  EXPECT_THROW(xml::parse("<a><b></a>"), Error);
  EXPECT_THROW(xml::parse("<a attr=unquoted/>"), Error);
  EXPECT_THROW(xml::parse("<a/><b/>"), Error);
  EXPECT_THROW(xml::parse("no xml at all"), Error);
}

TEST(Xml, ChildrenNamedReturnsAllInOrder) {
  const auto root = xml::parse("<m><r n='1'/><x/><r n='2'/></m>");
  const auto rs = root->childrenNamed("r");
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0]->attr("n"), "1");
  EXPECT_EQ(rs[1]->attr("n"), "2");
}

TEST(MemMap, FindAndKind) {
  MemoryMap map;
  map.addRegion({"rom", 0x80000000, 0x1000, RegionKind::kRom, 0x80000000});
  map.addRegion({"io", 0xf0000000, 0x100, RegionKind::kIo, 0xf0000000});
  EXPECT_EQ(map.find(0x80000abc)->name, "rom");
  EXPECT_EQ(map.find(0x70000000), nullptr);
  EXPECT_EQ(map.kindOf(0xf0000010), RegionKind::kIo);
  EXPECT_EQ(map.kindOf(0x12345678), RegionKind::kRam);  // unmapped fallback
}

TEST(MemMap, RejectsOverlap) {
  MemoryMap map;
  map.addRegion({"a", 0x1000, 0x100, RegionKind::kRam, 0x1000});
  EXPECT_THROW(
      map.addRegion({"b", 0x10ff, 0x100, RegionKind::kRam, 0x10ff}),
      Error);
}

TEST(MemMap, RemapTranslatesAddresses) {
  MemRegion r{"ram", 0xd0000000, 0x1000, RegionKind::kRam, 0x00800000};
  EXPECT_EQ(r.remap(0xd0000010), 0x00800010u);
}

TEST(SparseMem, ReadsZeroWhenUntouched) {
  SparseMemory mem;
  EXPECT_EQ(mem.read32(0x12345678), 0u);
}

TEST(SparseMem, LittleEndianAccess) {
  SparseMemory mem;
  mem.write32(0x100, 0xdeadbeef);
  EXPECT_EQ(mem.read8(0x100), 0xef);
  EXPECT_EQ(mem.read8(0x103), 0xde);
  EXPECT_EQ(mem.read16(0x102), 0xdead);
}

TEST(SparseMem, CrossPageAccess) {
  SparseMemory mem;
  const uint32_t addr = SparseMemory::kPageSize - 2;
  mem.write32(addr, 0x11223344);
  EXPECT_EQ(mem.read32(addr), 0x11223344u);
}

TEST(SparseMem, ContentEqualsIgnoresZeroPages) {
  SparseMemory a;
  SparseMemory b;
  a.write32(0x5000, 0);  // touched but zero
  EXPECT_TRUE(a.contentEquals(b));
  b.write32(0x6000, 7);
  EXPECT_FALSE(a.contentEquals(b));
}

TEST(Error, MacrosThrowWithContext) {
  try {
    CABT_FAIL("value " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value 42"), std::string::npos);
  }
  EXPECT_THROW(CABT_CHECK(false, "nope"), Error);
  EXPECT_NO_THROW(CABT_CHECK(true, "fine"));
}

}  // namespace
}  // namespace cabt
