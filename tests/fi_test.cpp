// Differential conformance fleet for the fault-injection & recovery
// subsystem (src/fi, DESIGN.md section 12).
//
// The claims under test:
//
//   * Non-perturbation: an armed campaign whose faults never fire leaves
//     every observable — registers, memory checksums, IRQ timestamps,
//     the full bus transaction log and the rolling state digest — byte-
//     identical to an FI-off run, across all four dispatch engines and
//     both kernels.
//   * Engine equivalence under fire: a firing fault lands at the same
//     block-boundary epoch in every engine (lookup, chained, traces,
//     threaded, per-instruction stepping, sequential and parallel
//     rounds), so the post-fault timeline is bit-identical everywhere.
//   * Guest-visible consequences: bus-error windows raise the precise
//     bus-error interrupt at block boundaries; the watchdog peripheral
//     fires when the guest stops petting it.
//   * Graceful degradation: recover() walks the snapshot ring newest to
//     oldest past corrupt, unreadable and trail-divergent entries, and
//     deterministic replay from the restored entry converges on the
//     digest of an uninterrupted clean run (one-shot faults never
//     re-fire after a rewind).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fi/fault_proxy.h"
#include "fi/fi.h"
#include "fi/inject.h"
#include "fi/watchdog.h"
#include "obs/metrics.h"
#include "platform/platform.h"
#include "snap/snapshot.h"
#include "soc/bus.h"
#include "soc/peripherals.h"
#include "workloads/workloads.h"

namespace cabt {
namespace {

constexpr uint64_t kNever = fi::CoreInjector::kNever;

// ---- board plumbing (same idiom as tests/snap_test.cpp) ---------------

struct GridBoard {
  std::vector<workloads::Workload> programs;
  std::vector<elf::Object> images;
  std::vector<const elf::Object*> image_ptrs;
  std::vector<uint32_t> extra_leaders;
};

GridBoard makeBoard(const std::vector<workloads::Workload>& programs) {
  GridBoard b;
  b.programs = programs;
  for (const workloads::Workload& w : b.programs) {
    b.images.push_back(workloads::assemble(w));
    if (!w.irq_handler.empty()) {
      b.extra_leaders.push_back(
          platform::symbolAddr(b.images.back(), w.irq_handler));
    }
  }
  for (const elf::Object& obj : b.images) {
    b.image_ptrs.push_back(&obj);
  }
  return b;
}

GridBoard makeBoard(const std::vector<std::string>& names) {
  std::vector<workloads::Workload> programs;
  for (const std::string& name : names) {
    programs.push_back(workloads::get(name));
  }
  return makeBoard(programs);
}

struct RunConfig {
  xlat::DetailLevel level = xlat::DetailLevel::kICache;
  iss::DispatchMode mode = iss::DispatchMode::kChainedTraces;
  bool use_block_cache = true;
  bool parallel = false;
  sim::Cycle quantum = 1024;
  bool watchdog = false;
};

std::unique_ptr<platform::ReferenceBoard> buildBoard(const GridBoard& grid,
                                                     const RunConfig& rc) {
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  platform::BoardConfig cfg;
  cfg.iss = platform::issConfigFor(rc.level);
  cfg.iss.dispatch_mode = rc.mode;
  cfg.iss.use_block_cache = rc.use_block_cache;
  cfg.iss.extra_leaders = grid.extra_leaders;
  cfg.quantum = rc.quantum;
  cfg.parallel.enabled = rc.parallel;
  cfg.parallel.workers = 2;  // real threads even on 1-core hosts
  cfg.watchdog = rc.watchdog;
  return std::make_unique<platform::ReferenceBoard>(desc, grid.image_ptrs,
                                                    cfg);
}

/// Every observable the acceptance criteria name, plus the digest.
struct BoardObs {
  std::vector<uint64_t> instructions;
  std::vector<iss::StopReason> stop;
  std::vector<uint32_t> pc;
  std::vector<std::array<uint32_t, 16>> d;
  std::vector<std::array<uint32_t, 16>> a;
  std::vector<uint32_t> checksum;
  std::vector<std::vector<uint64_t>> irq_times;
  std::vector<uint32_t> intc_pending;
  std::vector<uint64_t> irqs_taken;
  uint64_t bus_cycle = 0;
  std::array<uint32_t, 16> scratch{};
  std::vector<soc::Transaction> bus_log;
  uint64_t kernel_events = 0;
  uint64_t digest = 0;
};

BoardObs capture(platform::ReferenceBoard& board, const GridBoard& grid) {
  BoardObs s;
  for (size_t i = 0; i < board.numCores(); ++i) {
    s.instructions.push_back(board.core(i).stats().instructions);
    s.stop.push_back(board.core(i).stopReason());
    s.pc.push_back(board.core(i).pc());
    std::array<uint32_t, 16> d{};
    std::array<uint32_t, 16> a{};
    for (int r = 0; r < 16; ++r) {
      d[static_cast<size_t>(r)] = board.core(i).d(r);
      a[static_cast<size_t>(r)] = board.core(i).a(r);
    }
    s.d.push_back(d);
    s.a.push_back(a);
    s.checksum.push_back(
        workloads::readChecksum(grid.images[i], board.core(i).memory()));
    s.irq_times.push_back(board.intc(i).deliveryTimes());
    s.intc_pending.push_back(board.intc(i).pending());
    s.irqs_taken.push_back(board.core(i).stats().irqs_taken);
  }
  s.bus_cycle = board.board().bus.socCycle();
  for (size_t r = 0; r < 16; ++r) {
    s.scratch[r] = board.board().scratch.reg(r);
  }
  s.bus_log = board.board().bus.log();
  s.kernel_events = board.kernel().eventsDispatched();
  s.digest = snap::digest(board);
  return s;
}

void expectIdentical(const BoardObs& got, const BoardObs& want) {
  ASSERT_EQ(got.instructions.size(), want.instructions.size());
  for (size_t i = 0; i < got.instructions.size(); ++i) {
    SCOPED_TRACE("core " + std::to_string(i));
    EXPECT_EQ(got.instructions[i], want.instructions[i]);
    EXPECT_EQ(got.stop[i], want.stop[i]);
    EXPECT_EQ(got.pc[i], want.pc[i]);
    EXPECT_EQ(got.d[i], want.d[i]);
    EXPECT_EQ(got.a[i], want.a[i]);
    EXPECT_EQ(got.checksum[i], want.checksum[i]);
    EXPECT_EQ(got.irq_times[i], want.irq_times[i])
        << "IRQ delivery timestamps";
    EXPECT_EQ(got.intc_pending[i], want.intc_pending[i]);
    EXPECT_EQ(got.irqs_taken[i], want.irqs_taken[i]);
  }
  EXPECT_EQ(got.bus_cycle, want.bus_cycle);
  EXPECT_EQ(got.scratch, want.scratch);
  EXPECT_EQ(got.kernel_events, want.kernel_events);
  EXPECT_EQ(got.digest, want.digest) << "rolling state digest";
  ASSERT_EQ(got.bus_log.size(), want.bus_log.size());
  for (size_t i = 0; i < got.bus_log.size(); ++i) {
    const soc::Transaction& a = got.bus_log[i];
    const soc::Transaction& b = want.bus_log[i];
    EXPECT_EQ(a.soc_cycle, b.soc_cycle) << "transaction " << i;
    EXPECT_EQ(a.addr, b.addr) << "transaction " << i;
    EXPECT_EQ(a.value, b.value) << "transaction " << i;
    EXPECT_EQ(a.size, b.size) << "transaction " << i;
    EXPECT_EQ(a.is_write, b.is_write) << "transaction " << i;
  }
}

const std::vector<RunConfig>& engineGrid() {
  static const std::vector<RunConfig>* grid = [] {
    auto* g = new std::vector<RunConfig>;
    for (const bool parallel : {false, true}) {
      for (const iss::DispatchMode mode :
           {iss::DispatchMode::kLookup, iss::DispatchMode::kChained,
            iss::DispatchMode::kChainedTraces,
            iss::DispatchMode::kThreaded}) {
        RunConfig rc;
        rc.mode = mode;
        rc.parallel = parallel;
        g->push_back(rc);
      }
    }
    RunConfig stepping;  // per-instruction engine (no block cache)
    stepping.mode = iss::DispatchMode::kLookup;
    stepping.use_block_cache = false;
    g->push_back(stepping);
    return g;
  }();
  return *grid;
}

std::string configName(const RunConfig& rc) {
  std::string name = !rc.use_block_cache ? "stepping"
                     : rc.mode == iss::DispatchMode::kLookup ? "lookup"
                     : rc.mode == iss::DispatchMode::kChained ? "chained"
                     : rc.mode == iss::DispatchMode::kChainedTraces
                         ? "traces"
                         : "threaded";
  return name + (rc.parallel ? "_par" : "_seq");
}

// ---- spec parsing and injector validation -----------------------------

TEST(FaultSpecParse, RoundTripsFieldsAndRejectsGarbage) {
  const fi::FaultSpec f =
      fi::parseFaultSpec("dreg@2000:core=1,index=14,mask=255");
  EXPECT_EQ(f.kind, fi::FaultKind::kDataRegFlip);
  EXPECT_EQ(f.cycle, 2000u);
  EXPECT_EQ(f.core, 1u);
  EXPECT_EQ(f.index, 14u);
  EXPECT_EQ(f.mask, 255u);

  const fi::FaultSpec b = fi::parseFaultSpec(
      "buserr@100:addr=4026532608,hi=4026532611,count=2,until=5000");
  EXPECT_EQ(b.kind, fi::FaultKind::kBusError);
  EXPECT_EQ(b.addr, 0xf0000300u);
  EXPECT_EQ(b.addr_hi, 0xf0000303u);
  EXPECT_EQ(b.count, 2u);
  EXPECT_EQ(b.until, 5000u);

  const fi::FaultSpec s = fi::parseFaultSpec("stall@10:device=scratch");
  EXPECT_EQ(s.kind, fi::FaultKind::kDeviceStall);
  EXPECT_EQ(s.device, "scratch");

  EXPECT_THROW(fi::parseFaultSpec("dreg"), Error);            // no @cycle
  EXPECT_THROW(fi::parseFaultSpec("zap@100"), Error);         // unknown kind
  EXPECT_THROW(fi::parseFaultSpec("pc@100:bogus=1"), Error);  // unknown key
  EXPECT_THROW(fi::parseFaultSpec("pc@100:mask"), Error);     // no '='
  EXPECT_THROW(fi::parseFaultSpec("pc@x"), Error);            // bad number
}

TEST(CoreInjector, ValidatesSchedulesAndConsumesInOrder) {
  fi::CoreInjector inj;
  EXPECT_FALSE(inj.due(~0ull - 1));         // empty ladder never fires
  EXPECT_EQ(inj.take(~0ull), nullptr);      // ...and never hands out faults

  fi::CoreFault bad;
  bad.kind = fi::CoreFaultKind::kDataReg;
  bad.index = 16;
  bad.mask = 1;
  EXPECT_THROW(inj.schedule(bad), Error);
  bad.index = 0;
  bad.mask = 0;
  EXPECT_THROW(inj.schedule(bad), Error);
  fi::CoreFault unaligned;
  unaligned.kind = fi::CoreFaultKind::kMemWord;
  unaligned.addr = 2;
  unaligned.mask = 1;
  EXPECT_THROW(inj.schedule(unaligned), Error);

  fi::CoreFault late;
  late.kind = fi::CoreFaultKind::kDataReg;
  late.cycle = 300;
  late.index = 1;
  late.mask = 2;
  fi::CoreFault early = late;
  early.cycle = 100;
  early.index = 2;
  inj.schedule(late);
  inj.schedule(early);  // inserted before `late` despite schedule order
  EXPECT_EQ(inj.scheduled(), 2u);
  EXPECT_FALSE(inj.due(99));
  EXPECT_TRUE(inj.due(100));
  const fi::CoreFault* f = inj.take(100);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->index, 2u);
  EXPECT_EQ(inj.take(100), nullptr);  // `late` not due yet
  EXPECT_EQ(inj.pending(), 1u);
  // Both due at once drain in cycle order; consumed faults never return.
  const fi::CoreFault* g = inj.take(500);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->index, 1u);
  EXPECT_EQ(inj.take(500), nullptr);
  EXPECT_FALSE(inj.due(~0ull - 1));
}

// ---- device-level units -----------------------------------------------

TEST(WatchdogUnit, FiresOnceWhenNotPetted) {
  fi::WatchdogDevice wd;
  uint64_t fired_at = 0;
  wd.setOnFire([&fired_at](uint64_t at) { fired_at = at; });
  wd.write(fi::WatchdogDevice::kLoadOffset, 100, 4, 10);
  EXPECT_THROW(  // arming with LOAD = 0 is a guest bug
      [] {
        fi::WatchdogDevice zero;
        zero.write(fi::WatchdogDevice::kCtrlOffset, 1, 4, 0);
      }(),
      Error);
  wd.write(fi::WatchdogDevice::kCtrlOffset, 1, 4, 10);  // deadline = 110
  EXPECT_TRUE(wd.enabled());
  wd.advanceTo(10, 50);
  EXPECT_EQ(wd.fired(), 0u);
  wd.write(fi::WatchdogDevice::kPetOffset, 1, 4, 50);  // deadline = 150
  wd.advanceTo(50, 120);
  EXPECT_EQ(wd.fired(), 0u);
  EXPECT_EQ(wd.read(fi::WatchdogDevice::kPetOffset, 4, 120), 30u);
  wd.advanceTo(120, 200);  // not petted: expires at 150
  EXPECT_EQ(wd.fired(), 1u);
  EXPECT_EQ(fired_at, 150u);
  EXPECT_FALSE(wd.enabled());  // one-shot
  wd.advanceTo(200, 400);
  EXPECT_EQ(wd.fired(), 1u);
}

TEST(FaultProxyUnit, StallsOnlyInsideTheWindow) {
  soc::ScratchDevice scratch;
  fi::FaultProxy proxy(&scratch);
  EXPECT_EQ(proxy.name(), "scratch");
  proxy.write(0, 7, 4, 10);
  EXPECT_EQ(proxy.read(0, 4, 11), 7u);
  proxy.armStall(100, 200, 0xffffffffu);
  EXPECT_EQ(proxy.read(0, 4, 99), 7u);
  EXPECT_EQ(proxy.read(0, 4, 100), 0xffffffffu);  // stalled read
  proxy.write(0, 9, 4, 150);                      // dropped write
  EXPECT_EQ(proxy.read(0, 4, 200), 7u);  // window over, value kept
  EXPECT_EQ(proxy.stalledReads(), 1u);
  EXPECT_EQ(proxy.stalledWrites(), 1u);
  proxy.clearStall();
  EXPECT_FALSE(proxy.stalledAt(150));
}

// ---- non-perturbation -------------------------------------------------

// An armed campaign whose faults never fire is invisible: digest and the
// full bus log match an FI-off run on every engine and both kernels.
TEST(NonPerturbation, ArmedIdleCampaignIsByteIdentical) {
  const GridBoard grid =
      makeBoard(std::vector<std::string>{"mc_producer", "mc_consumer"});
  for (const RunConfig& rc : engineGrid()) {
    SCOPED_TRACE(configName(rc));
    auto ref = buildBoard(grid, rc);
    ref->run();
    const BoardObs want = capture(*ref, grid);

    auto board = buildBoard(grid, rc);
    fi::Campaign camp;
    for (size_t core = 0; core < 2; ++core) {
      fi::FaultSpec f;
      f.kind = fi::FaultKind::kDataRegFlip;
      f.cycle = kNever;  // armed, never due
      f.core = core;
      f.index = 15;
      f.mask = 1;
      camp.add(f);
    }
    fi::FaultSpec bus;
    bus.kind = fi::FaultKind::kBusError;
    bus.cycle = kNever;  // window never opens
    bus.addr = 0xf0000300u;
    camp.add(bus);
    fi::FaultSpec stall;
    stall.kind = fi::FaultKind::kDeviceStall;
    stall.cycle = kNever;
    stall.device = "scratch";
    camp.add(stall);
    camp.arm(*board);
    board->run();
    expectIdentical(capture(*board, grid), want);
    EXPECT_EQ(camp.firedCount(), 0u);
    EXPECT_EQ(board->board().bus.busFaultFires(), 0u);

    obs::MetricsRegistry reg;
    camp.publishMetrics(reg);
    EXPECT_EQ(reg.counterOr("fi.faults_scheduled"), 4u);
    EXPECT_EQ(reg.counterOr("fi.core_faults_fired"), 0u);
    EXPECT_EQ(reg.counterOr("fi.device_stall_hits"), 0u);
    camp.disarm();
  }
}

// ---- engine equivalence under fire ------------------------------------

// A register flip and a private-memory word flip at fixed cycles land at
// the same boundary epoch in every engine: the post-fault timeline is
// bit-identical everywhere, and differs from the clean run.
TEST(FaultEquivalence, RegisterAndMemoryFlipsMatchAcrossEngines) {
  const GridBoard grid = makeBoard(std::vector<std::string>{"mc_worker"});
  const uint32_t x_addr = platform::symbolAddr(grid.images[0], "x");

  RunConfig clean_rc;
  auto clean = buildBoard(grid, clean_rc);
  clean->run();
  const uint64_t clean_digest = snap::digest(*clean);

  bool have_want = false;
  BoardObs want;
  for (const RunConfig& rc : engineGrid()) {
    SCOPED_TRACE(configName(rc));
    auto board = buildBoard(grid, rc);
    fi::Campaign camp;
    fi::FaultSpec reg;
    reg.kind = fi::FaultKind::kDataRegFlip;
    reg.cycle = 2000;
    reg.index = 14;  // mc_worker never writes d14: the flip survives
    reg.mask = 0x00ff00ffu;
    camp.add(reg);
    fi::FaultSpec mem;
    mem.kind = fi::FaultKind::kMemFlip;
    mem.cycle = 3000;
    mem.addr = x_addr + 64;  // inside the LCG-initialised input array
    mem.mask = 0xa5u;
    camp.add(mem);
    camp.arm(*board);
    board->run();
    const BoardObs got = capture(*board, grid);
    EXPECT_EQ(camp.firedCount(), 2u);
    const std::vector<fi::FiredFault>& fired = camp.fired(0);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0].after, fired[0].before ^ 0x00ff00ffu);
    EXPECT_GE(fired[0].at, 2000u);
    EXPECT_EQ(fired[1].after, fired[1].before ^ 0xa5u);
    EXPECT_GE(fired[1].at, 3000u);
    if (!have_want) {
      want = got;
      have_want = true;
      // The faults really happened: the fault run's digest differs from
      // the clean run's.
      EXPECT_NE(got.digest, clean_digest);
    } else {
      expectIdentical(got, want);
    }
  }
}

// ---- guest-visible consequences ---------------------------------------

// Probes the scratch device while a bus-error window covers it: the
// first two reads return the poison word and raise the precise bus-error
// line; the guest's ISR counts both deliveries. Identical on every
// engine.
const char* kBusErrProbe = R"(
; buserr_probe - count precise bus-error traps from a faulted window
_start: movha a6, 0xf000
        movi d14, 0           ; bus-error count, ISR-owned
        movi d12, 2
        movh d0, hi(isr)
        addi d0, d0, lo(isr)
        stw d0, [a6]0x410     ; intc VECTOR = isr
        movi d0, 4
        stw d0, [a6]0x404     ; intc ENABLE line 2 (bus error)
        movi d0, 1
        stw d0, [a6]0x414     ; intc CTRL master enable
        movi d8, 6
        movi d9, 0
probe:  ldw d5, [a6]0x300     ; scratch register 0 (faulted window)
        add d9, d9, d5
        addi16 d8, -1
        jnz16 d8, probe
ewait:  lt d1, d14, d12
        jnz16 d1, ewait       ; wait for both trap deliveries
        movi d0, 0
        stw d0, [a6]0x414     ; master disable
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0
        halt
isr:    addi16 d14, 1
        movi d15, 4
        stw d15, [a6]0x40c    ; ACK line 2 (write-1-to-clear)
        movi d15, 1
        stw d15, [a6]0x41c    ; EOI
        ji a14
        .data
result: .word 0
)";

TEST(BusError, WindowPoisonsReadsAndRaisesThePreciseTrap) {
  workloads::Workload probe;
  probe.name = "buserr_probe";
  probe.description = "bus-error trap counter";
  probe.source = kBusErrProbe;
  probe.irq_handler = "isr";
  const GridBoard grid = makeBoard(std::vector<workloads::Workload>{probe});

  bool have_want = false;
  BoardObs want;
  for (const RunConfig& rc : engineGrid()) {
    SCOPED_TRACE(configName(rc));
    auto board = buildBoard(grid, rc);
    fi::Campaign camp;
    fi::FaultSpec f;
    f.kind = fi::FaultKind::kBusError;
    f.cycle = 0;  // window open from the start...
    f.addr = 0xf0000300u;
    f.count = 2;  // ...but only the first two accesses fault
    camp.add(f);
    camp.arm(*board);
    board->run();
    const BoardObs got = capture(*board, grid);
    EXPECT_EQ(board->board().bus.busFaultFires(), 2u);
    EXPECT_EQ(got.stop[0], iss::StopReason::kHalted);
    EXPECT_EQ(got.d[0][14], 2u) << "ISR bus-error count";
    // checksum = 2 poison reads + 4 real reads of scratch register 0 (0)
    EXPECT_EQ(got.checksum[0], static_cast<uint32_t>(2 * 0xdeadbeefull));
    EXPECT_GE(got.irqs_taken[0], 2u);
    if (!have_want) {
      want = got;
      have_want = true;
    } else {
      expectIdentical(got, want);
    }
  }
}

// ---- watchdog + recovery ----------------------------------------------

// Pets the watchdog from a compute loop, then disables it before
// halting. The fault campaigns below redirect pc to `hang`, simulating a
// crashed guest that stops petting.
const char* kWdPet = R"(
; wd_pet - watchdog-petting compute loop
_start: movha a6, 0xf000
        movi d0, 600
        stw d0, [a6]0x700     ; watchdog LOAD = 600 SoC cycles
        movi d0, 1
        stw d0, [a6]0x708     ; watchdog CTRL enable
        movi d8, 40
        movi d9, 0
loop:   movi d7, 20
inner:  add d9, d9, d7
        addi16 d7, -1
        jnz16 d7, inner
        movi d1, 1
        stw d1, [a6]0x704     ; PET
        addi16 d8, -1
        jnz16 d8, loop
        movi d0, 0
        stw d0, [a6]0x708     ; disable before halting
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0
        halt
hang:   j16 hang              ; fault target: stops petting
        .data
result: .word 0
)";

GridBoard makeWdBoard() {
  workloads::Workload pet;
  pet.name = "wd_pet";
  pet.description = "watchdog-petting compute loop";
  pet.source = kWdPet;
  GridBoard grid = makeBoard(std::vector<workloads::Workload>{pet});
  // The fault redirects pc into `hang`, which static control flow never
  // reaches — make it a known block leader like an interrupt handler.
  grid.extra_leaders.push_back(platform::symbolAddr(grid.images[0], "hang"));
  return grid;
}

TEST(Watchdog, FiresOnHungGuestAndRecoveryRewindsPastTheFault) {
  GridBoard grid = makeWdBoard();
  RunConfig rc;
  rc.watchdog = true;

  auto clean = buildBoard(grid, rc);
  clean->setCheckpointing({512, 4, ""});
  clean->run();
  const BoardObs want = capture(*clean, grid);
  const std::vector<std::pair<sim::Cycle, uint64_t>> trail =
      clean->digestTrail();
  ASSERT_GE(trail.size(), 3u);
  EXPECT_EQ(clean->watchdog().fired(), 0u);  // a petted dog never fires

  auto board = buildBoard(grid, rc);
  board->setCheckpointing({512, 4, ""});
  board->setExpectedTrail(trail);
  fi::Campaign camp;
  fi::FaultSpec f;
  f.kind = fi::FaultKind::kPcSet;
  f.cycle = 1500;
  f.addr = platform::symbolAddr(grid.images[0], "hang");
  camp.add(f);
  camp.arm(*board);
  board->runTo(4000);
  EXPECT_EQ(camp.firedCount(), 1u);
  EXPECT_EQ(board->watchdog().fired(), 1u) << "unpetted watchdog fires";
  EXPECT_TRUE(board->watchdogFirePending());
  EXPECT_GE(board->divergences(), 1u);

  const platform::RecoveryReport rep = board->recover();
  ASSERT_TRUE(rep.recovered) << rep.detail;
  // With a 1024-cycle quantum the chunk ending at 1024 already contains
  // the core slice [1024, 2048) where the fault fired, so the newest
  // trail-certified entry is the one at 512.
  EXPECT_EQ(rep.resume_cycle, 512u);
  EXPECT_FALSE(board->watchdogFirePending());
  EXPECT_EQ(board->recoveries(), 1u);
  // The pcset fault was consumed before the rewind: replay runs clean
  // and converges on the uninterrupted run.
  board->run();
  expectIdentical(capture(*board, grid), want);
  EXPECT_EQ(board->watchdog().fired(), 0u) << "rewound watchdog state";

  obs::MetricsRegistry reg;
  board->publishMetrics(reg);
  EXPECT_EQ(reg.counterOr("board.fi.recoveries"), 1u);
  EXPECT_GE(reg.counterOr("board.fi.divergences"), 1u);
  EXPECT_EQ(reg.counterOr("board.fi.watchdog_fired"), 0u);
}

TEST(Recovery, AutoRecoverRewindsOnTrailDivergence) {
  GridBoard grid = makeWdBoard();
  RunConfig rc;
  rc.watchdog = true;

  auto clean = buildBoard(grid, rc);
  clean->setCheckpointing({512, 4, ""});
  clean->run();
  const BoardObs want = capture(*clean, grid);

  auto board = buildBoard(grid, rc);
  board->setCheckpointing({512, 4, ""});
  board->setExpectedTrail(clean->digestTrail());
  platform::RecoveryConfig recovery;
  recovery.auto_recover = true;
  board->setRecovery(recovery);
  fi::Campaign camp;
  fi::FaultSpec f;
  f.kind = fi::FaultKind::kPcSet;
  f.cycle = 1500;
  f.addr = platform::symbolAddr(grid.images[0], "hang");
  camp.add(f);
  camp.arm(*board);
  // run() crosses the divergent checkpoint, auto-recovers to the newest
  // certified entry, and replays to a clean completion in one call.
  board->run();
  EXPECT_EQ(board->recoveries(), 1u);
  EXPECT_EQ(board->divergences(), 1u);
  EXPECT_EQ(board->watchdog().fired(), 0u)
      << "divergence detection recovered before the watchdog expired";
  expectIdentical(capture(*board, grid), want);
}

// ---- snapshot-ring corruption and graceful degradation ----------------

TEST(Recovery, CorruptRingEntriesFallBackToTheNewestIntactOne) {
  const GridBoard grid = makeBoard(std::vector<std::string>{"irq_ticks"});
  const RunConfig rc;
  auto clean = buildBoard(grid, rc);
  clean->run();
  const BoardObs want = capture(*clean, grid);

  auto board = buildBoard(grid, rc);
  board->setCheckpointing({512, 4, ""});
  fi::Campaign camp;
  fi::FaultSpec f;
  f.kind = fi::FaultKind::kRingCorrupt;
  f.cycle = 1000;  // entries checkpointed from cycle 1000 on are corrupted
  f.addr = 100;    // byte offset to flip (mod entry size)
  camp.add(f);
  camp.arm(*board);
  board->run();
  // Corrupting ring copies never touches live state: the run itself is
  // still byte-identical to the clean one. irq_ticks checkpoints at 512,
  // 1024 and 2560; the campaign corrupted the newer two.
  expectIdentical(capture(*board, grid), want);
  ASSERT_EQ(board->checkpoints().size(), 3u);
  EXPECT_EQ(camp.ringCorruptions(), 2u);
  obs::MetricsRegistry reg;
  camp.publishMetrics(reg);
  EXPECT_EQ(reg.counterOr("fi.ring_corruptions"), 2u);

  // recover() walks past the two corrupt entries (their integrity
  // footer fails before any state is mutated) to the newest intact one.
  const platform::RecoveryReport rep = board->recover();
  ASSERT_TRUE(rep.recovered) << rep.detail;
  EXPECT_EQ(rep.entries_tried, 3u);
  EXPECT_EQ(rep.entries_corrupt, 2u);
  EXPECT_EQ(rep.resume_cycle, 512u);
  board->run();
  expectIdentical(capture(*board, grid), want);
}

TEST(Recovery, SpilledRingRetriesUnreadableFilesThenFallsBack) {
  const GridBoard grid = makeBoard(std::vector<std::string>{"irq_ticks"});
  const RunConfig rc;
  auto clean = buildBoard(grid, rc);
  clean->run();
  const BoardObs want = capture(*clean, grid);

  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "fi_ring").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto board = buildBoard(grid, rc);
  board->setCheckpointing({512, 4, dir});
  platform::RecoveryConfig recovery;
  recovery.io_attempts = 3;
  recovery.backoff_ms = 0;
  board->setRecovery(recovery);
  board->run();
  ASSERT_EQ(board->checkpoints().size(), 3u);
  for (const platform::Checkpoint& cp : board->checkpoints()) {
    ASSERT_FALSE(cp.path.empty());
    EXPECT_TRUE(cp.data.empty()) << "spilled entries hold no bytes";
  }
  // Newest entry: gone from disk (exhausts the bounded I/O retries).
  std::filesystem::remove(board->checkpoints().back().path);
  // Second newest: one flipped byte (fails the integrity footer).
  {
    const std::string& path =
        board->checkpoints()[board->checkpoints().size() - 2].path;
    std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(fs.good());
    fs.seekg(64);
    char b = 0;
    fs.read(&b, 1);
    b = static_cast<char>(b ^ 0x10);
    fs.seekp(64);
    fs.write(&b, 1);
  }
  const platform::RecoveryReport rep = board->recover();
  ASSERT_TRUE(rep.recovered) << rep.detail;
  EXPECT_EQ(rep.entries_tried, 3u);
  EXPECT_EQ(rep.entries_corrupt, 2u);
  EXPECT_EQ(rep.io_retries, 2u) << "3 attempts on the deleted file";
  board->run();
  expectIdentical(capture(*board, grid), want);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cabt
